package mpi

import "math/bits"

// Large-message collective algorithms, mirroring the MVAPICH2/MPICH
// selection logic: binomial broadcast and recursive-doubling allreduce win
// for short messages (latency-bound), while scatter+allgather broadcast
// and Rabenseifner allreduce win for long ones (bandwidth-bound). The
// generic Bcast/Allreduce entry points switch on Config.LargeThreshold.

// LargeThreshold is the default message size (bytes) at which collectives
// switch to the bandwidth-optimised algorithms.
const LargeThreshold = 65536

// BcastBinomial always uses the binomial tree (latency-optimal); it is
// the algorithm behind Bcast, exported under its algorithmic name for
// ablations.
func (r *Rank) BcastBinomial(root int, bytes float64) { r.Bcast(root, bytes) }

// BcastScatterAllgather uses the van de Geijn algorithm: a binomial
// scatter of 1/p blocks followed by a ring allgather — the MPICH choice
// for long messages.
func (r *Rank) BcastScatterAllgather(root int, bytes float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	block := bytes / float64(p)
	// Binomial scatter: at each step a rank forwards the half of its
	// current segment destined for the subtree it peels off.
	relative := (r.id - root + p) % p
	// Find this rank's receive step and parent.
	mask := 1
	for mask < p {
		if relative&mask != 0 {
			src := (r.id - mask + p) % p
			r.Recv(src, tag) // segment size is carried by the sender
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < p {
			dst := (r.id + mask) % p
			seg := mask
			if relative+2*mask > p {
				seg = p - relative - mask
			}
			r.Send(dst, block*float64(seg), tag)
		}
		mask >>= 1
	}
	// Ring allgather of the scattered blocks.
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	for step := 0; step < p-1; step++ {
		r.SendRecv(right, block, left, block, tag+1)
	}
	r.collSeq++ // account for tag+1
}

// BcastAuto broadcasts bytes from root, selecting binomial for short
// messages and scatter+allgather beyond the threshold, like MVAPICH2.
func (r *Rank) BcastAuto(root int, bytes float64) {
	if bytes < LargeThreshold || r.Size() <= 2 {
		r.Bcast(root, bytes)
		return
	}
	r.BcastScatterAllgather(root, bytes)
}

// AllreduceRecursiveDoubling is the short-message allreduce (the
// algorithm behind Allreduce).
func (r *Rank) AllreduceRecursiveDoubling(bytes float64) {
	r.Allreduce(bytes)
}

// AllreduceRabenseifner uses reduce-scatter (recursive halving) followed
// by an allgather (recursive doubling): each phase moves ~bytes in total
// instead of bytes*log(p) — the long-message winner.
func (r *Rank) AllreduceRabenseifner(bytes float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	p2 := 1 << uint(bits.Len(uint(p))-1)
	rem := p - p2

	inGroup := true
	groupRank := -1
	switch {
	case r.id < 2*rem && r.id%2 == 0:
		r.Send(r.id+1, bytes, tag)
		inGroup = false
	case r.id < 2*rem:
		r.Recv(r.id-1, tag)
		groupRank = r.id / 2
	default:
		groupRank = r.id - rem
	}

	if inGroup {
		// Reduce-scatter by recursive halving: message sizes halve each
		// step (bytes/2, bytes/4, ...).
		size := bytes / 2
		for mask := p2 / 2; mask > 0; mask >>= 1 {
			peer := groupToRank(groupRank^mask, rem)
			r.SendRecv(peer, size, peer, size, tag+1)
			size /= 2
		}
		// Allgather by recursive doubling: sizes double back up.
		size = bytes / float64(p2)
		for mask := 1; mask < p2; mask <<= 1 {
			peer := groupToRank(groupRank^mask, rem)
			r.SendRecv(peer, size, peer, size, tag+2)
			size *= 2
		}
	}

	if r.id < 2*rem {
		if r.id%2 == 0 {
			r.Recv(r.id+1, tag+3)
		} else {
			r.Send(r.id-1, bytes, tag+3)
		}
	}
	r.collSeq += 3
}

// AllreduceAuto picks recursive doubling below the threshold and
// Rabenseifner above it.
func (r *Rank) AllreduceAuto(bytes float64) {
	if bytes < LargeThreshold || r.Size() <= 2 {
		r.Allreduce(bytes)
		return
	}
	r.AllreduceRabenseifner(bytes)
}

// AllgatherRecursiveDoubling is the power-of-two-friendly short-message
// allgather: log2(p) steps with doubling sizes. Falls back to the ring
// for non-powers of two.
func (r *Rank) AllgatherRecursiveDoubling(bytesPerRank float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	if p&(p-1) != 0 {
		r.Allgather(bytesPerRank)
		return
	}
	tag := r.collTag()
	size := bytesPerRank
	for mask := 1; mask < p; mask <<= 1 {
		peer := r.id ^ mask
		r.SendRecv(peer, size, peer, size, tag)
		size *= 2
	}
}

// AlltoallBruck is the short-message all-to-all: ceil(log2 p) rounds of
// aggregated messages of ~half the total buffer each, trading bandwidth
// for latency.
func (r *Rank) AlltoallBruck(bytesPerPair float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	for pow := 1; pow < p; pow <<= 1 {
		// Blocks whose index has bit `pow` set travel this round: about
		// half of the p blocks.
		blocks := 0
		for b := 1; b < p; b++ {
			if b&pow != 0 {
				blocks++
			}
		}
		dst := (r.id + pow) % p
		src := (r.id - pow + p) % p
		r.SendRecv(dst, bytesPerPair*float64(blocks), src, bytesPerPair*float64(blocks), tag)
	}
}

// AlltoallAuto picks Bruck for short per-pair payloads and pairwise
// exchange for long ones.
func (r *Rank) AlltoallAuto(bytesPerPair float64) {
	if bytesPerPair*float64(r.Size()) < LargeThreshold {
		r.AlltoallBruck(bytesPerPair)
		return
	}
	r.Alltoall(bytesPerPair)
}

// Scan performs an inclusive prefix reduction: rank i receives partial
// results from lower ranks via the binomial-like MPICH algorithm
// (simplified to the standard log-step exchange).
func (r *Rank) Scan(bytes float64) {
	p := r.Size()
	if p == 1 {
		r.collSeq++
		return
	}
	tag := r.collTag()
	for mask := 1; mask < p; mask <<= 1 {
		dst := r.id + mask
		src := r.id - mask
		rq := (*Request)(nil)
		if src >= 0 {
			rq = r.Irecv(src, tag)
		}
		if dst < p {
			r.Send(dst, bytes, tag)
		}
		if rq != nil {
			r.Wait(rq)
		}
	}
}
