// Package mpi provides a simulated Message Passing Interface on top of
// the simnet fluid network simulator: rank processes with blocking and
// non-blocking point-to-point operations and the collective algorithms of
// MVAPICH2-era MPI libraries (binomial broadcast/reduce, recursive-doubling
// allreduce with non-power-of-two folding, ring allgather, pairwise
// all-to-all, dissemination barrier). It replaces the paper's
// SimGrid/SMPI + MVAPICH2 stack.
//
// Rank i runs on host i of the underlying network, so the MPI rank order
// is the host numbering — which is exactly what the paper's host
// attachment policies (§6.2.1) control.
package mpi

import (
	"fmt"

	"repro/internal/simnet"
)

// Config tunes the MPI model. Zero values take defaults.
type Config struct {
	// FlopsPerHost converts Compute(flops) to seconds. Default 100e9
	// (the paper's 100 GFlops hosts).
	FlopsPerHost float64
	// EagerLimit is the message size (bytes) up to which sends complete
	// without waiting for the transfer (eager protocol). Default 12288.
	EagerLimit float64
	// PacketMode switches transfers from the fluid flow model to
	// store-and-forward packet simulation (higher fidelity, slower).
	PacketMode bool
	// MTU is the packet size for PacketMode; 0 uses simnet.DefaultMTU.
	MTU float64
	// Tracer, when non-nil, records the communication timeline.
	Tracer *Tracer
	// FlowTracer, when non-nil, records the lifecycle of every underlying
	// network flow (see simnet.FlowTracer); together with Tracer this gives
	// the full rank-level and fabric-level picture of a run.
	FlowTracer *simnet.FlowTracer
	// Metrics, when non-nil, receives live simulator updates so a metrics
	// endpoint can be scraped mid-run (see simnet.SimMetrics).
	Metrics *simnet.SimMetrics
	// TrackLinkStats enables cumulative per-link byte accounting;
	// Stats.Links is filled when set.
	TrackLinkStats bool
	// LinkSeriesBucket, when positive, enables time-bucketed per-link byte
	// accounting with the given bucket width in simulated seconds;
	// Stats.LinkSeries is filled when set.
	LinkSeriesBucket float64
	// LinkDowns schedules switch-switch link failures before the run, so
	// NPB skeletons can be timed on a fabric that degrades mid-run (see
	// simnet.Sim.ScheduleLinkDown for the failure semantics).
	LinkDowns []LinkDown
}

// LinkDown is one scheduled link failure: the link between switches A and
// B fails at absolute simulated time At.
type LinkDown struct {
	At   float64
	A, B int
}

func (c Config) withDefaults() Config {
	if c.FlopsPerHost == 0 {
		c.FlopsPerHost = 100e9
	}
	if c.EagerLimit == 0 {
		c.EagerLimit = 12288
	}
	return c
}

// World is one MPI job: size ranks on the first size hosts of a network.
type World struct {
	sim   *simnet.Sim
	cfg   Config
	size  int
	ranks []*Rank
}

// Stats summarises a completed run.
type Stats struct {
	Elapsed        float64 // simulated seconds from start to last rank exit
	FlowsCompleted int64
	FlowsFailed    int64 // transfers lost to link failures (see simnet)
	BytesMoved     float64
	// Links is the cumulative per-directed-link byte count (only with
	// Config.TrackLinkStats).
	Links []simnet.LinkLoad
	// LinkSeries is the time-bucketed per-link byte series (only with
	// Config.LinkSeriesBucket > 0): LinkSeries[b][l] is the bytes link l
	// carried in bucket b. Idle buckets have nil rows.
	LinkSeries [][]float64
}

// Run executes program on every rank of a fresh world and returns run
// statistics. program must be collective-safe: every rank calls the same
// collectives in the same order. Errors returned by any rank's program (or
// deadlock) abort the run.
func Run(nw *simnet.Network, size int, cfg Config, program func(r *Rank) error) (Stats, error) {
	if size < 1 || size > nw.Hosts() {
		return Stats{}, fmt.Errorf("mpi: size %d out of range 1..%d", size, nw.Hosts())
	}
	sim := simnet.NewSim(nw)
	sim.Tracer = cfg.FlowTracer
	sim.Metrics = cfg.Metrics
	sim.TrackLinkStats = cfg.TrackLinkStats
	if cfg.LinkSeriesBucket > 0 {
		sim.EnableLinkSeries(cfg.LinkSeriesBucket)
	}
	w := &World{sim: sim, cfg: cfg.withDefaults(), size: size}
	for _, ld := range cfg.LinkDowns {
		if err := sim.ScheduleLinkDown(ld.At, ld.A, ld.B); err != nil {
			return Stats{}, fmt.Errorf("mpi: %w", err)
		}
	}
	errs := make([]error, size)
	for i := 0; i < size; i++ {
		i := i
		r := &Rank{world: w, id: i}
		w.ranks = append(w.ranks, r)
		sim.Spawn(i, func(p *simnet.Proc) {
			r.proc = p
			errs[i] = program(r)
		})
	}
	if err := sim.Run(); err != nil {
		return Stats{}, err
	}
	for i, err := range errs {
		if err != nil {
			return Stats{}, fmt.Errorf("mpi: rank %d: %w", i, err)
		}
	}
	st := Stats{
		Elapsed:        sim.Now(),
		FlowsCompleted: sim.FlowsCompleted,
		FlowsFailed:    sim.FlowsFailed,
		BytesMoved:     sim.BytesMoved,
		LinkSeries:     sim.LinkSeries(),
	}
	if cfg.TrackLinkStats {
		st.Links = sim.LinkLoads()
	}
	return st, nil
}

// Rank is one MPI process.
type Rank struct {
	world *World
	proc  *simnet.Proc
	id    int

	// Mailbox: send envelopes that arrived before a matching receive, and
	// receives posted before a matching send. Both FIFO.
	unexpected []*envelope
	posted     []*recvPost

	collSeq int // per-rank collective sequence number (see collTag)
}

type envelope struct {
	src, tag int
	bytes    float64
	sendReq  *Request
}

type recvPost struct {
	src, tag int
	recvReq  *Request
}

// Request is a handle for a non-blocking operation.
type Request struct {
	sig *simnet.Signal
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.sig.Fired() }

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.world.size }

// Time returns the current simulated time in seconds.
func (r *Rank) Time() float64 { return r.proc.Now() }

// Compute advances this rank by flops/FlopsPerHost seconds.
func (r *Rank) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	r.world.cfg.Tracer.record(TraceEvent{Time: r.proc.Now(), Rank: r.id, Op: "compute", Peer: -1, Bytes: flops})
	r.proc.Sleep(flops / r.world.cfg.FlopsPerHost)
}

// Isend starts a non-blocking send of bytes to rank dst with the given
// tag. Small messages (<= EagerLimit) complete the send request
// immediately; larger ones complete when the transfer finishes.
func (r *Rank) Isend(dst int, bytes float64, tag int) *Request {
	w := r.world
	if dst < 0 || dst >= w.size {
		panic(fmt.Sprintf("mpi: rank %d Isend to invalid rank %d", r.id, dst))
	}
	w.cfg.Tracer.record(TraceEvent{Time: w.sim.Now(), Rank: r.id, Op: "isend", Peer: dst, Bytes: bytes, Tag: tag})
	req := &Request{sig: w.sim.NewSignal()}
	env := &envelope{src: r.id, tag: tag, bytes: bytes, sendReq: req}
	peer := w.ranks[dst]
	// Look for a matching posted receive (FIFO).
	for i, post := range peer.posted {
		if matches(post.src, post.tag, env.src, env.tag) {
			peer.posted = append(peer.posted[:i], peer.posted[i+1:]...)
			w.startTransfer(env, post, dst)
			return req
		}
	}
	peer.unexpected = append(peer.unexpected, env)
	if bytes <= w.cfg.EagerLimit {
		// Eager: the sender does not wait for the receiver.
		w.sim.FireAt(req.sig, w.sim.Network().Config().MessageOverhead)
	}
	return req
}

// Irecv posts a non-blocking receive matching rank src and tag. Use
// AnySource and AnyTag as wildcards.
func (r *Rank) Irecv(src, tag int) *Request {
	w := r.world
	w.cfg.Tracer.record(TraceEvent{Time: w.sim.Now(), Rank: r.id, Op: "irecv", Peer: src, Tag: tag})
	req := &Request{sig: w.sim.NewSignal()}
	post := &recvPost{src: src, tag: tag, recvReq: req}
	for i, env := range r.unexpected {
		if matches(post.src, post.tag, env.src, env.tag) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			w.startTransfer(env, post, r.id)
			return req
		}
	}
	r.posted = append(r.posted, post)
	return req
}

// Wildcards for Irecv.
const (
	AnySource = -1
	AnyTag    = -1
)

func matches(wantSrc, wantTag, src, tag int) bool {
	return (wantSrc == AnySource || wantSrc == src) &&
		(wantTag == AnyTag || wantTag == tag)
}

// startTransfer begins the network flow for a matched pair and wires the
// completion signal to both requests.
func (w *World) startTransfer(env *envelope, post *recvPost, dst int) {
	var sg *simnet.Signal
	var err error
	if w.cfg.PacketMode {
		sg, err = w.sim.StartPacketMessage(env.src, dst, env.bytes, w.cfg.MTU)
	} else {
		sg, err = w.sim.StartFlow(env.src, dst, env.bytes)
	}
	if err != nil {
		panic("mpi: " + err.Error())
	}
	// The receive always completes with the transfer. The send completes
	// with the transfer for rendezvous messages; eager sends may have
	// completed already (double-fire is a no-op). Chaining (rather than
	// replacing the request's signal) keeps already-blocked waiters safe.
	w.sim.Chain(sg, post.recvReq.sig)
	if env.bytes > w.cfg.EagerLimit {
		w.sim.Chain(sg, env.sendReq.sig)
	} else {
		// Eager send whose envelope was matched immediately (receive was
		// already posted): it still completes after the overhead.
		if !env.sendReq.sig.Fired() {
			w.sim.FireAt(env.sendReq.sig, w.sim.Network().Config().MessageOverhead)
		}
	}
}

// Wait blocks until the request completes.
func (r *Rank) Wait(q *Request) { r.proc.Wait(q.sig) }

// WaitAll blocks until every request completes.
func (r *Rank) WaitAll(qs ...*Request) {
	for _, q := range qs {
		r.Wait(q)
	}
}

// Send is a blocking send.
func (r *Rank) Send(dst int, bytes float64, tag int) {
	r.Wait(r.Isend(dst, bytes, tag))
}

// Recv is a blocking receive.
func (r *Rank) Recv(src, tag int) {
	r.Wait(r.Irecv(src, tag))
}

// SendRecv sends to dst and receives from src concurrently, the
// deadlock-free exchange primitive used by the collectives.
func (r *Rank) SendRecv(dst int, sendBytes float64, src int, recvBytes float64, tag int) {
	_ = recvBytes // sizes are carried by the sender in this model
	rq := r.Irecv(src, tag)
	sq := r.Isend(dst, sendBytes, tag)
	r.Wait(rq)
	r.Wait(sq)
}
