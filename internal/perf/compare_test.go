package perf

import (
	"bytes"
	"strings"
	"testing"
)

// synthSamples builds a deterministic 11-sample distribution with exact
// median med+shift and exact MAD mad: offsets are symmetric around zero
// and chosen so the median absolute deviation lands on the 1.0*mad entry.
func synthSamples(med, mad, shift float64) []float64 {
	offs := []float64{0, 0.4, -0.4, 0.7, -0.7, 1.0, -1.0, 1.6, -1.6, 2.2, -2.2}
	xs := make([]float64, len(offs))
	for i, o := range offs {
		xs[i] = med + o*mad + shift
	}
	return xs
}

type synthSpec struct {
	name   string
	med    float64 // median wall time, ns
	relMAD float64 // MAD as a fraction of the median
	shift  float64 // absolute shift applied to every sample, ns
	scale  float64 // multiplicative slowdown applied to every sample (0 = 1)
}

// synthReport assembles a valid Report from synthetic distributions.
func synthReport(specs []synthSpec) *Report {
	r := NewReport(false)
	for _, s := range specs {
		scale := s.scale
		if scale == 0 {
			scale = 1
		}
		samples := synthSamples(s.med, s.relMAD*s.med, s.shift)
		for i := range samples {
			samples[i] *= scale
		}
		med, mad := MedianMAD(samples)
		r.Workloads = append(r.Workloads, WorkloadResult{
			Name: s.name, Family: "eval", Unit: "pairs",
			Warmup: 2, Reps: len(samples), SamplesNs: samples,
			MedianNs: med, MADNs: mad, ItemsPerOp: 1, Throughput: 1,
		})
	}
	return r
}

func TestSynthSamplesHaveRequestedStats(t *testing.T) {
	med, mad := MedianMAD(synthSamples(1e6, 2e4, 0))
	if med != 1e6 || mad != 2e4 {
		t.Fatalf("synthetic distribution: got median %v MAD %v, want 1e6 / 2e4", med, mad)
	}
}

// TestCompareNoFalsePositiveAtTwiceMADJitter: a median shift of twice
// the measured MAD — heavy but entirely plausible run-to-run jitter —
// must never trip the gate, at any noise level. This holds by
// construction (the threshold is MADScale=6 MADs with a MinRel=0.10
// floor, and 2 < 6), and this test pins that guarantee.
func TestCompareNoFalsePositiveAtTwiceMADJitter(t *testing.T) {
	for _, relMAD := range []float64{0.002, 0.005, 0.01, 0.02, 0.05, 0.15, 0.40} {
		old := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: relMAD}})
		new := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: relMAD, shift: 2 * relMAD * 1e6}})
		res, err := Compare(old, new, CompareOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Regressions != 0 || res.Gate() {
			t.Errorf("relMAD %.3f: +2*MAD jitter flagged as regression: %+v", relMAD, res.Deltas)
		}
	}
}

// TestCompareDetectsTwentyPercentSlowdown: a uniform 20% slowdown must
// fire the gate for every workload quiet enough that its noise threshold
// sits below 20% (relative MAD under (0.20 - epsilon)/MADScale ~ 3.3%) —
// which covers every steady workload in the registry.
func TestCompareDetectsTwentyPercentSlowdown(t *testing.T) {
	for _, relMAD := range []float64{0, 0.005, 0.01, 0.02, 0.03} {
		old := synthReport([]synthSpec{{name: "w", med: 5e7, relMAD: relMAD}})
		new := synthReport([]synthSpec{{name: "w", med: 5e7, relMAD: relMAD, scale: 1.20}})
		res, err := Compare(old, new, CompareOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Regressions != 1 || !res.Gate() {
			t.Errorf("relMAD %.3f: 20%% slowdown not flagged (deltas %+v)", relMAD, res.Deltas)
		}
		if d := res.Deltas[0]; !d.Regression || d.Ratio < 1.19 || d.Ratio > 1.21 {
			t.Errorf("relMAD %.3f: delta %+v, want regression at ratio ~1.20", relMAD, d)
		}
	}
}

// TestCompareImprovementIsNotARegression: a 30% speedup is reported as
// an improvement and does not gate.
func TestCompareImprovementIsNotARegression(t *testing.T) {
	old := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01}})
	new := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01, scale: 0.70}})
	res, err := Compare(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Improvements != 1 || res.Regressions != 0 || res.Gate() {
		t.Fatalf("70%% runtime: got %+v, want one improvement, no gate", res)
	}
}

// TestCompareThresholdUsesNoisierRun: the per-workload threshold is
// derived from whichever of the two runs measured more noise, so a quiet
// baseline cannot make a noisy new run look like a regression.
func TestCompareThresholdUsesNoisierRun(t *testing.T) {
	old := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.002}})
	new := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.08, shift: 0.15e6}})
	res, err := Compare(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Deltas[0]
	// The new run's relative MAD is 0.08e6 / 1.15e6 ~ 7%, so the noise
	// term (6 MADs ~ 0.42) dominates the quiet baseline's.
	if d.Threshold < 0.40 {
		t.Fatalf("threshold %.3f did not scale with the noisier run's MAD", d.Threshold)
	}
	if d.Regression {
		t.Fatalf("15%% shift inside a noisy run flagged as regression: %+v", d)
	}
}

// TestCompareScaleRelaxesThresholds: CI compares with Scale > 1; a 20%
// slowdown that gates at Scale 1 passes at Scale 2.5.
func TestCompareScaleRelaxesThresholds(t *testing.T) {
	old := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01}})
	new := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01, scale: 1.20}})
	strict, err := Compare(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Compare(old, new, CompareOptions{Scale: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if !strict.Gate() || relaxed.Gate() {
		t.Fatalf("scale relaxation: strict gate %v, relaxed gate %v; want true/false", strict.Gate(), relaxed.Gate())
	}
}

// TestCompareMissingWorkloads: a baseline workload silently dropped from
// the new report gates (a deleted benchmark must not read as a pass);
// a brand-new workload is reported but does not gate.
func TestCompareMissingWorkloads(t *testing.T) {
	old := synthReport([]synthSpec{{name: "a", med: 1e6, relMAD: 0.01}, {name: "b", med: 1e6, relMAD: 0.01}})
	new := synthReport([]synthSpec{{name: "b", med: 1e6, relMAD: 0.01}, {name: "c", med: 1e6, relMAD: 0.01}})
	res, err := Compare(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissingInNew) != 1 || res.MissingInNew[0] != "a" {
		t.Fatalf("MissingInNew = %v, want [a]", res.MissingInNew)
	}
	if len(res.MissingInOld) != 1 || res.MissingInOld[0] != "c" {
		t.Fatalf("MissingInOld = %v, want [c]", res.MissingInOld)
	}
	if !res.Gate() {
		t.Fatal("dropped baseline workload did not gate")
	}

	onlyNew := synthReport([]synthSpec{{name: "a", med: 1e6, relMAD: 0.01}, {name: "b", med: 1e6, relMAD: 0.01}, {name: "c", med: 1e6, relMAD: 0.01}})
	res, err = Compare(old, onlyNew, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gate() {
		t.Fatal("new workload without baseline gated")
	}
}

// TestCompareSchemaMismatch: reports from different schema versions
// refuse to compare rather than produce quietly wrong verdicts.
func TestCompareSchemaMismatch(t *testing.T) {
	old := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01}})
	new := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01}})
	new.Schema = ReportSchemaVersion + 1
	if _, err := Compare(old, new, CompareOptions{}); err == nil {
		t.Fatal("schema mismatch did not error")
	}
}

// TestCompareMachineMismatchWarns: different machine fingerprints set
// the advisory flag without changing verdicts.
func TestCompareMachineMismatchWarns(t *testing.T) {
	old := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01}})
	new := synthReport([]synthSpec{{name: "w", med: 1e6, relMAD: 0.01}})
	new.Machine.CPU = old.Machine.CPU + " (different)"
	res, err := Compare(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MachineMismatch {
		t.Fatal("machine fingerprint mismatch not flagged")
	}
	var buf bytes.Buffer
	res.Format(&buf)
	if !strings.Contains(buf.String(), "different machine fingerprints") {
		t.Fatalf("Format output missing machine warning:\n%s", buf.String())
	}
}

// TestCompareFormat renders the table and spells out verdicts.
func TestCompareFormat(t *testing.T) {
	old := synthReport([]synthSpec{
		{name: "slow", med: 1e6, relMAD: 0.01},
		{name: "steady", med: 1e6, relMAD: 0.01},
	})
	new := synthReport([]synthSpec{
		{name: "slow", med: 1e6, relMAD: 0.01, scale: 1.5},
		{name: "steady", med: 1e6, relMAD: 0.01},
	})
	res, err := Compare(old, new, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	out := buf.String()
	for _, want := range []string{"REGRESSION", "slow", "steady", "ok", "threshold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
	// Regressions print first so a truncated CI log still shows them.
	if strings.Index(out, "slow") > strings.Index(out, "steady") {
		t.Fatalf("regression row not sorted first:\n%s", out)
	}
}
