package perf

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func TestMedianMAD(t *testing.T) {
	cases := []struct {
		xs       []float64
		med, mad float64
	}{
		{nil, 0, 0},
		{[]float64{5}, 5, 0},
		{[]float64{1, 2, 3, 4}, 2.5, 1},
		{[]float64{3, 1, 2}, 2, 1},
		{[]float64{10, 10, 10, 1000}, 10, 0}, // one spike cannot move either statistic
	}
	for _, c := range cases {
		med, mad := MedianMAD(c.xs)
		if med != c.med || mad != c.mad {
			t.Errorf("MedianMAD(%v) = %v/%v, want %v/%v", c.xs, med, mad, c.med, c.mad)
		}
	}
}

func TestRegisterRejectsUnknownFamily(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register accepted an unknown family")
		}
	}()
	Register(Workload{Name: "bogus/x", Family: "nope", Setup: func(Config) (*Instance, error) { return nil, nil }})
}

func TestRegistryQueries(t *testing.T) {
	if len(Workloads()) < 10 {
		t.Fatalf("registry has %d workloads, expected the full canonical set", len(Workloads()))
	}
	for _, prefix := range []string{"eval/", "anneal/", "simnet/", "fault/", "ckpt/"} {
		if len(Names(prefix)) == 0 {
			t.Errorf("no workloads registered under %q", prefix)
		}
	}
	if Lookup("no/such/workload") != nil {
		t.Fatal("Lookup invented a workload")
	}
	if got, want := len(Match(regexp.MustCompile(`^eval/`))), len(Names("eval/")); got != want {
		t.Fatalf("Match(^eval/) = %d workloads, Names(eval/) = %d", got, want)
	}
	fams := Families([]WorkloadResult{{Family: "ckpt"}, {Family: "eval"}, {Family: "ckpt"}})
	if len(fams) != 2 || fams[0] != "ckpt" || fams[1] != "eval" {
		t.Fatalf("Families = %v, want [ckpt eval]", fams)
	}
}

// sleepWorkload is a deterministic-duration workload for harness
// self-tests; d is read on every repetition so a test can inject a
// slowdown between two measurement passes.
func sleepWorkload(name string, d *time.Duration) Workload {
	return Workload{
		Name: name, Family: "ckpt", Doc: "self-test sleeper", Unit: "naps",
		Setup: func(Config) (*Instance, error) {
			return &Instance{Run: func() (float64, error) {
				time.Sleep(*d)
				return 1, nil
			}}, nil
		},
	}
}

// measureSleep runs one measurement pass over the sleeper and wraps it
// in a validated report.
func measureSleep(t *testing.T, name string, d *time.Duration) *Report {
	t.Helper()
	rep, err := RunWorkloads([]Workload{sleepWorkload(name, d)}, RunOptions{Warmup: 1, Reps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestInjectedSlowdownFiresGate is the end-to-end self-test of the
// acceptance criterion: measure a workload, inject a deliberate 20%
// time.Sleep slowdown, measure again, and the comparator gate must fire.
func TestInjectedSlowdownFiresGate(t *testing.T) {
	d := 10 * time.Millisecond
	base := measureSleep(t, "selftest/sleeper", &d)

	d = 12 * time.Millisecond // the injected 20% slowdown
	slow := measureSleep(t, "selftest/sleeper", &d)

	res, err := Compare(base, slow, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Gate() || res.Regressions != 1 {
		t.Fatalf("injected 20%% slowdown did not fire the gate: %+v", res.Deltas)
	}
}

// TestBackToBackRunsDoNotGate: two measurement passes of the same
// workload on the same build must compare clean — the noise-aware
// thresholds exist exactly so that honest reruns pass.
func TestBackToBackRunsDoNotGate(t *testing.T) {
	d := 10 * time.Millisecond
	a := measureSleep(t, "selftest/sleeper", &d)
	b := measureSleep(t, "selftest/sleeper", &d)
	res, err := Compare(a, b, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gate() {
		t.Fatalf("back-to-back identical runs gated: %+v", res.Deltas)
	}
}

// TestReportRoundTrip: a measured report survives Write/ReadReport and
// Validate rejects tampering.
func TestReportRoundTrip(t *testing.T) {
	d := time.Millisecond
	rep, err := RunWorkloads([]Workload{sleepWorkload("selftest/rt", &d)}, RunOptions{Warmup: 1, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workloads) != 1 || back.Workloads[0].Name != "selftest/rt" {
		t.Fatalf("round trip lost workloads: %+v", back.Workloads)
	}
	if back.Build.GoVersion == "" || back.Machine.GOARCH == "" {
		t.Fatalf("round trip lost fingerprints: %+v / %+v", back.Build, back.Machine)
	}

	tampered := *back
	tampered.Workloads = append([]WorkloadResult(nil), back.Workloads...)
	tampered.Workloads[0].MedianNs *= 2 // no longer matches SamplesNs
	if err := tampered.Validate(); err == nil {
		t.Fatal("Validate accepted a median that disagrees with its samples")
	}
	wrongKind := *back
	wrongKind.Kind = "something.else"
	if err := wrongKind.Validate(); err == nil {
		t.Fatal("Validate accepted a foreign kind tag")
	}
}

func TestRunOptionsDefaults(t *testing.T) {
	var full, short RunOptions
	short.Short = true
	full.defaults()
	short.defaults()
	if full.Reps != 12 || full.Warmup != 2 {
		t.Fatalf("full defaults = %d reps / %d warmup, want 12/2", full.Reps, full.Warmup)
	}
	if short.Reps != 6 || short.Warmup != 1 {
		t.Fatalf("short defaults = %d reps / %d warmup, want 6/1", short.Reps, short.Warmup)
	}
}

// TestProfileCapturesLabels runs a workload under -profile-dir and
// verifies the captured CPU profile actually carries the pprof labels
// the harness sets: the profile's string table (after gunzip — CPU
// profiles are gzip-compressed protobuf) must contain the label keys
// and the workload name, which appears nowhere else in the binary.
func TestProfileCapturesLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("profile capture needs ~1s of CPU in -short mode")
	}
	dir := t.TempDir()

	// On a single-CPU machine the calling goroutine drains the shard
	// queue before the pool goroutines ever run, so no CPU sample would
	// land on a worker. Oversubscribing GOMAXPROCS time-slices the pool
	// onto the core and makes worker samples (and their labels) appear.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	// A probe workload that drives the sharded evaluator pool hard
	// enough (~60ms per rep) for the 100 Hz CPU sampler to land plenty
	// of samples in both the harness goroutine (workload/stage labels
	// from pprof.Do) and the pool workers (stage/worker goroutine
	// labels set in hsgraph.NewEvaluator).
	const probeName = "eval/profile-probe/n=512,r=12"
	probe := Workload{
		Name: probeName, Family: "eval", Unit: "pairs",
		Setup: func(Config) (*Instance, error) {
			g, err := evalGraph(512, 12)
			if err != nil {
				return nil, err
			}
			// Explicit worker count: on a single-CPU machine a
			// GOMAXPROCS-sized pool would have no pool goroutines at
			// all (worker 0 is the caller), and hence nothing to label.
			ev := hsgraph.NewEvaluator(3)
			return &Instance{
				Run: func() (float64, error) {
					n := 0
					for t0 := time.Now(); time.Since(t0) < 60*time.Millisecond; {
						ev.Evaluate(g)
						n++
					}
					return float64(n), nil
				},
				Close: ev.Close,
			}, nil
		},
	}

	if _, err := RunWorkload(probe, RunOptions{Warmup: 1, Reps: 10, ProfileDir: dir}); err != nil {
		t.Fatal(err)
	}

	cpuPath := filepath.Join(dir, profileFileName(probeName)+".cpu.pprof")
	raw, err := os.ReadFile(cpuPath)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("CPU profile is not gzip-compressed protobuf: %v", err)
	}
	proto, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"workload", probeName, "stage", "eval", "worker"} {
		if !bytes.Contains(proto, []byte(label)) {
			t.Errorf("CPU profile string table missing label string %q", label)
		}
	}

	heapPath := filepath.Join(dir, profileFileName(probeName)+".heap.pprof")
	if fi, err := os.Stat(heapPath); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

// TestEvaluatorWorkerGoroutineLabels asserts the persistent sharded-pool
// goroutines carry their stage/worker pprof labels, via the goroutine
// profile's debug=1 text rendering (which prints labels verbatim).
func TestEvaluatorWorkerGoroutineLabels(t *testing.T) {
	// Worker 0 is the calling goroutine; workers 1..N-1 are pool
	// goroutines labelled at spawn in hsgraph.NewEvaluator.
	ev := hsgraph.NewEvaluator(3)
	defer ev.Close()
	// One evaluation synchronizes with the pool, guaranteeing every
	// worker has run (and therefore labelled itself) before the snapshot.
	g, err := hsgraph.RandomConnected(64, 16, 8, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// A worker caught mid-transition (running, not yet parked on the
	// channel receive) renders in the profile without stack or labels,
	// so snapshot until every worker is parked.
	var out string
	for attempt := 0; attempt < 50; attempt++ {
		ev.Evaluate(g)
		time.Sleep(time.Millisecond)
		var buf bytes.Buffer
		if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
			t.Fatal(err)
		}
		out = buf.String()
		ok := true
		for _, want := range []string{`"stage":"eval"`, `"worker":"1"`, `"worker":"2"`} {
			ok = ok && strings.Contains(out, want)
		}
		if ok {
			return
		}
	}
	t.Fatalf("goroutine profile never showed stage/worker labels for both pool workers:\n%s", out)
}
