package perf

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// The serve family measures the orpd fast path: a submission whose
// result is already in the content-addressed cache must be answered
// from memory, so its latency is the service's floor and any regression
// here is user-visible on every repeated query. Two rungs bracket the
// path: eval-cached times the scheduler core alone (Submit -> cache key
// -> stored bytes), http-eval-cached adds the HTTP layer (routing, spec
// decode, response encode) via an in-process recorder, no sockets.
//
// One cache hit runs in single-digit microseconds, so each repetition
// batches serveBatch submissions for the same reason ckpt batches
// snapshots: a rep has to span several GC cycles to time reproducibly.
const serveBatch = 128

// serveSpec is the warmed eval query both workloads repeat. Generated
// (not inline) so the cache key is a few fixed integers and the setup
// needs no graph text.
func serveSpec() serve.JobSpec {
	return serve.JobSpec{Type: serve.TypeEval, N: 48, M: 16, R: 6, GraphSeed: 1}
}

// warmServer builds a server and runs serveSpec once so every
// subsequent submission is a cache hit.
func warmServer() (*serve.Server, error) {
	s, err := serve.New(serve.Config{Workers: 1, CacheSize: 16, Registry: obs.NewRegistry()})
	if err != nil {
		return nil, err
	}
	st, err := s.Submit(serveSpec())
	if err != nil {
		s.Close()
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err = s.Wait(ctx, st.ID)
	if err != nil {
		s.Close()
		return nil, err
	}
	if st.State != serve.StateDone {
		s.Close()
		return nil, fmt.Errorf("serve: warmup eval failed: %s", st.Error)
	}
	return s, nil
}

func registerServe() {
	suffix := fmt.Sprintf("n=%d,m=%d,r=%d", 48, 16, 6)
	Register(Workload{
		Name:   "serve/eval-cached/" + suffix,
		Family: "serve",
		Doc:    fmt.Sprintf("orpd cache-hit submissions through the scheduler core (x%d per rep)", serveBatch),
		Unit:   "queries",
		Setup: func(Config) (*Instance, error) {
			s, err := warmServer()
			if err != nil {
				return nil, err
			}
			spec := serveSpec()
			return &Instance{
				Run: func() (float64, error) {
					for i := 0; i < serveBatch; i++ {
						st, err := s.Submit(spec)
						if err != nil {
							return 0, err
						}
						if !st.Cached || st.State != serve.StateDone {
							return 0, fmt.Errorf("serve: submission missed the cache (state %s)", st.State)
						}
					}
					return serveBatch, nil
				},
				Close: func() { s.Close() },
			}, nil
		},
	})
	Register(Workload{
		Name:   "serve/http-eval-cached/" + suffix,
		Family: "serve",
		Doc:    fmt.Sprintf("orpd cache-hit POST /v1/jobs through the HTTP handler (x%d per rep)", serveBatch),
		Unit:   "queries",
		Setup: func(Config) (*Instance, error) {
			s, err := warmServer()
			if err != nil {
				return nil, err
			}
			handler := s.Handler()
			spec := serveSpec()
			body := fmt.Sprintf(`{"type":%q,"n":%d,"m":%d,"r":%d,"graphSeed":%d}`,
				spec.Type, spec.N, spec.M, spec.R, spec.GraphSeed)
			return &Instance{
				Run: func() (float64, error) {
					for i := 0; i < serveBatch; i++ {
						req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
						req.Header.Set("Content-Type", "application/json")
						rec := httptest.NewRecorder()
						handler.ServeHTTP(rec, req)
						if rec.Code != http.StatusOK {
							return 0, fmt.Errorf("serve: want cache-hit 200, got %d: %s", rec.Code, rec.Body.Bytes())
						}
					}
					return serveBatch, nil
				},
				Close: func() { s.Close() },
			}, nil
		},
	})
}
