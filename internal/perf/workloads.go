package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bounds"
	"repro/internal/ckpt"
	"repro/internal/cliutil"
	"repro/internal/fault"
	"repro/internal/hsgraph"
	"repro/internal/mpi"
	"repro/internal/npb"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/runstore"
	"repro/internal/simnet"
	"repro/internal/topo"
)

// The canonical workload set. Sizes are fixed per workload (they are part
// of the name and hence of the trajectory); short mode only reduces
// repetition counts in the harness. Each family covers one subsystem the
// ROADMAP treats as a hot path:
//
//	eval    serial vs bit-parallel vs sharded h-ASPL evaluation
//	anneal  the SA move loop per move set, plus the observed variant
//	simnet  NPB communication skeletons on the fluid simulator
//	fault   Monte-Carlo degradation sweeps
//	ckpt    snapshot encode/decode round trips
//	serve   orpd cache-hit submissions (scheduler core and HTTP path)
func init() {
	for _, c := range []struct{ n, r int }{{512, 12}, {1024, 24}} {
		registerEval(c.n, c.r)
	}
	registerEvalIncremental(1024, 9)
	for _, moves := range []opt.MoveSet{opt.SwapOnly, opt.SwingOnly, opt.TwoNeighborSwing} {
		registerAnneal(moves)
	}
	registerAnnealObserved()
	registerAnnealObservedSpans()
	registerAnnealStored()
	registerAnnealSharded()
	registerAnnealLadder()
	registerEvalOrbit()
	registerAnnealSymmetric()
	registerSimnet("CG")
	registerSimnet("MG")
	registerFaultSweep()
	registerCkpt()
	registerServe()
}

// evalGraph builds the deterministic evaluation input at m = m_opt.
func evalGraph(n, r int) (*hsgraph.Graph, error) {
	m, _ := bounds.OptimalSwitchCount(n, r, 0)
	return hsgraph.RandomConnected(n, m, r, rng.New(1))
}

func registerEval(n, r int) {
	pairs := float64(n) * float64(n-1) / 2
	suffix := fmt.Sprintf("n=%d,r=%d", n, r)
	Register(Workload{
		Name:   "eval/serial/" + suffix,
		Family: "eval",
		Doc:    "h-ASPL via one plain BFS per host-bearing switch",
		Unit:   "pairs",
		Setup: func(Config) (*Instance, error) {
			g, err := evalGraph(n, r)
			if err != nil {
				return nil, err
			}
			want := g.Evaluate().TotalPath
			return &Instance{Run: func() (float64, error) {
				if met := g.EvaluateSlow(); met.TotalPath != want {
					return 0, fmt.Errorf("serial evaluation diverged: %d vs %d", met.TotalPath, want)
				}
				return pairs, nil
			}}, nil
		},
	})
	Register(Workload{
		Name:   "eval/bitparallel/" + suffix,
		Family: "eval",
		Doc:    "h-ASPL via the 64-sources-per-word bit-parallel sweep",
		Unit:   "pairs",
		Setup: func(Config) (*Instance, error) {
			g, err := evalGraph(n, r)
			if err != nil {
				return nil, err
			}
			return &Instance{Run: func() (float64, error) {
				g.Evaluate()
				return pairs, nil
			}}, nil
		},
	})
	Register(Workload{
		Name:   "eval/sharded/" + suffix,
		Family: "eval",
		Doc:    "h-ASPL via the persistent sharded evaluator pool (GOMAXPROCS workers)",
		Unit:   "pairs",
		Setup: func(Config) (*Instance, error) {
			g, err := evalGraph(n, r)
			if err != nil {
				return nil, err
			}
			want := g.Evaluate().TotalPath
			ev := hsgraph.NewEvaluator(runtime.GOMAXPROCS(0))
			return &Instance{
				Run: func() (float64, error) {
					if met := ev.Evaluate(g); met.TotalPath != want {
						return 0, fmt.Errorf("sharded evaluation diverged: %d vs %d", met.TotalPath, want)
					}
					return pairs, nil
				},
				Close: ev.Close,
			}, nil
		},
	})
}

// registerEvalIncremental measures the dirty-source resweep that backs
// the evaluation ladder: a fixed script of edge remove/re-add moves, each
// followed by an incremental Energy, so the cost per move is the resweep
// of the move's dirty cone rather than a full sweep. The script restores
// the starting edge set, so every rep does identical work.
func registerEvalIncremental(n, r int) {
	const moves = 32
	Register(Workload{
		Name:   fmt.Sprintf("eval/incremental/n=%d,r=%d", n, r),
		Family: "eval",
		Doc:    "h-ASPL after single-edge moves via the dirty-source incremental evaluator",
		Unit:   "moves",
		Setup: func(Config) (*Instance, error) {
			g, err := evalGraph(n, r)
			if err != nil {
				return nil, err
			}
			// Pick the move script once, by endpoints: edge indices shift
			// as Disconnect/Connect reorder the internal edge list, but
			// the same (a, b) sequence means the same work every rep.
			rnd := rng.New(11)
			type pair struct{ a, b int }
			picked := make(map[pair]bool, moves)
			script := make([]pair, 0, moves)
			for len(script) < moves {
				a, b := g.Edge(rnd.Intn(g.NumEdges()))
				if p := (pair{a, b}); !picked[p] {
					picked[p] = true
					script = append(script, p)
				}
			}
			ie := hsgraph.NewIncrementalEvaluator(runtime.GOMAXPROCS(0))
			want, _ := ie.Energy(g) // prime the cache
			return &Instance{Run: func() (float64, error) {
				for _, p := range script {
					if err := g.Disconnect(p.a, p.b); err != nil {
						return 0, err
					}
					ie.Energy(g)
					if err := g.Connect(p.a, p.b); err != nil {
						return 0, err
					}
					if e, ok := ie.Energy(g); !ok || e != want {
						return 0, fmt.Errorf("incremental evaluation diverged after revert: %d vs %d", e, want)
					}
				}
				return moves, nil
			}}, nil
		},
	})
}

// annealStart is the shared SA benchmark input (the obs-bench graph).
func annealStart() (*hsgraph.Graph, error) {
	return hsgraph.RandomConnected(96, 24, 8, rng.New(1))
}

const annealIters = 1000

func annealInstance(o opt.Options) (*Instance, error) {
	start, err := annealStart()
	if err != nil {
		return nil, err
	}
	return &Instance{Run: func() (float64, error) {
		if _, _, err := opt.Anneal(start, o); err != nil {
			return 0, err
		}
		return float64(o.Iterations), nil
	}}, nil
}

func registerAnneal(moves opt.MoveSet) {
	Register(Workload{
		Name:   fmt.Sprintf("anneal/%s/n=96,iters=%d", moves, annealIters),
		Family: "anneal",
		Doc:    fmt.Sprintf("SA hot path, %s move set, serial evaluation", moves),
		Unit:   "moves",
		Setup: func(Config) (*Instance, error) {
			return annealInstance(opt.Options{Iterations: annealIters, Moves: moves, Seed: 2})
		},
	})
}

// registerAnnealObserved pairs anneal/2-neighbor-swing with the full
// telemetry observer, so the trajectory records the observer overhead the
// obs layer promises to keep negligible.
func registerAnnealObserved() {
	Register(Workload{
		Name:   fmt.Sprintf("anneal/observed/n=96,iters=%d", annealIters),
		Family: "anneal",
		Doc:    "SA hot path (2-neighbor-swing) with live obs gauges sampled every 250 iterations",
		Unit:   "moves",
		Setup: func(Config) (*Instance, error) {
			reg := obs.NewRegistry()
			return annealInstance(opt.Options{
				Iterations:  annealIters,
				Moves:       opt.TwoNeighborSwing,
				Seed:        2,
				ReportEvery: 250,
				Observer:    cliutil.NewAnnealObserver(reg, nil, false),
			})
		},
	})
}

// registerAnnealObservedSpans adds the causal stage-span trace on top of
// the observed workload: the run carries a root span and every stage
// boundary (init, loop, checkpoints, final eval) emits a JSON-encoded
// span event, the exact shape orpd gives every job. The delta against
// anneal/observed is the whole tracing cost, which the obs layer
// promises stays within noise of the move loop (spans fire per stage,
// never per iteration).
func registerAnnealObservedSpans() {
	Register(Workload{
		Name:   fmt.Sprintf("anneal/observed-spans/n=96,iters=%d", annealIters),
		Family: "anneal",
		Doc:    "anneal/observed plus a per-run stage-span trace, JSON-encoded to a discarded stream",
		Unit:   "moves",
		Setup: func(Config) (*Instance, error) {
			start, err := annealStart()
			if err != nil {
				return nil, err
			}
			reg := obs.NewRegistry()
			emit := func(e obs.Event) { json.NewEncoder(io.Discard).Encode(e) }
			return &Instance{Run: func() (float64, error) {
				root := obs.NewTracer("perf", time.Time{}, emit).Root("solve")
				o := opt.Options{
					Iterations:  annealIters,
					Moves:       opt.TwoNeighborSwing,
					Seed:        2,
					ReportEvery: 250,
					Observer:    cliutil.NewAnnealObserver(reg, nil, false),
					Span:        root,
				}
				if _, _, err := opt.Anneal(start, o); err != nil {
					return 0, err
				}
				root.End()
				return float64(annealIters), nil
			}}, nil
		},
	})
}

// registerAnnealStored layers the run store on top of
// anneal/observed-spans: each rep runs the same traced anneal and then
// persists one full record — metrics, energy trace, span-derived phase
// decomposition, graph fingerprint, result bytes — to a real on-disk
// store, fsync included. The delta against anneal/observed-spans is the
// entire persistence cost, which must stay inside the <3% telemetry
// overhead budget (the store writes once per completed run, never per
// iteration).
func registerAnnealStored() {
	Register(Workload{
		Name:   fmt.Sprintf("anneal/stored/n=96,iters=%d", annealIters),
		Family: "anneal",
		Doc:    "anneal/observed-spans plus one durable run-store record append per run",
		Unit:   "moves",
		Setup: func(Config) (*Instance, error) {
			start, err := annealStart()
			if err != nil {
				return nil, err
			}
			dir, err := os.MkdirTemp("", "orp-perf-store-*")
			if err != nil {
				return nil, err
			}
			st, err := runstore.Open(dir)
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			reg := obs.NewRegistry()
			var spans []obs.Event
			emit := func(e obs.Event) {
				json.NewEncoder(io.Discard).Encode(e)
				if e.Kind == obs.KindSpan {
					spans = append(spans, e)
				}
			}
			return &Instance{
				Run: func() (float64, error) {
					spans = spans[:0]
					runStart := time.Now()
					root := obs.NewTracer("perf", time.Time{}, emit).Root("solve")
					o := opt.Options{
						Iterations:  annealIters,
						Moves:       opt.TwoNeighborSwing,
						Seed:        2,
						ReportEvery: 250,
						TraceEnergy: true,
						Observer:    cliutil.NewAnnealObserver(reg, nil, false),
						Span:        root,
					}
					g, res, err := opt.Anneal(start, o)
					if err != nil {
						return 0, err
					}
					root.End()
					if err := st.AppendRun(func() runstore.Record {
						result, _ := json.Marshal(res.Best)
						return runstore.Record{
							Unix:        time.Now().UnixNano(),
							Tool:        "orpbench",
							Kind:        "anneal",
							Fingerprint: g.Fingerprint().String(),
							Seed:        2,
							N:           96,
							M:           24,
							R:           8,
							Metrics: runstore.MetricsOf(res.Best.HASPL, res.Best.Diameter,
								res.Best.Connected, res.Best.TotalPath, res.Best.ReachablePairs),
							EnergyTrace:       res.EnergyTrace,
							EnergyTraceStride: res.EnergyTraceStride,
							Phases:            runstore.PhasesFromDurations(obs.PhaseDurations(spans)),
							WallSeconds:       time.Since(runStart).Seconds(),
							Result:            result,
						}
					}); err != nil {
						return 0, err
					}
					return float64(annealIters), nil
				},
				Close: func() {
					st.Close()
					os.RemoveAll(dir)
				},
			}, nil
		},
	})
}

// registerAnnealSharded exercises the anneal loop over the sharded
// evaluator at a scale where sharding pays.
func registerAnnealSharded() {
	const n, r, iters = 512, 12, 300
	Register(Workload{
		Name:   fmt.Sprintf("anneal/sharded/n=%d,r=%d,iters=%d", n, r, iters),
		Family: "anneal",
		Doc:    "SA hot path with GOMAXPROCS evaluation shard workers",
		Unit:   "moves",
		Setup: func(Config) (*Instance, error) {
			m, _ := bounds.OptimalSwitchCount(n, r, 0)
			start, err := hsgraph.RandomConnected(n, m, r, rng.New(1))
			if err != nil {
				return nil, err
			}
			o := opt.Options{Iterations: iters, Seed: 2, Workers: runtime.GOMAXPROCS(0)}
			return &Instance{Run: func() (float64, error) {
				if _, _, err := opt.Anneal(start, o); err != nil {
					return 0, err
				}
				return float64(iters), nil
			}}, nil
		},
	})
}

// registerAnnealLadder pits the evaluation ladder against the exact rung
// at paper scale (n=1024): same graph, same seed, same accepted-move
// sequence by construction, so the moves/s ratio between the two
// workloads is the ladder speedup. r=9 swing moves put the dirty cone at
// ~a quarter of the switches, the regime the ladder is built for; a
// single worker keeps the comparison a straight single-thread one
// instead of measuring goroutine scheduling.
func registerAnnealLadder() {
	const n, r, iters = 1024, 9, 2000
	for _, mode := range []opt.EvalMode{opt.EvalExact, opt.EvalLadder} {
		mode := mode
		Register(Workload{
			Name:   fmt.Sprintf("anneal/%s/n=%d,r=%d,iters=%d", mode, n, r, iters),
			Family: "anneal",
			Doc:    fmt.Sprintf("SA hot path at paper scale, %s evaluation rung", mode),
			Unit:   "moves",
			Setup: func(Config) (*Instance, error) {
				start, err := evalGraph(n, r)
				if err != nil {
					return nil, err
				}
				// Explicit temperatures skip the shared calibration phase,
				// so the measurement is the move loop itself.
				o := opt.Options{Iterations: iters, Seed: 2, Workers: 1,
					Moves: opt.SwingOnly, Eval: mode,
					InitialTemp: 500, FinalTemp: 2.5}
				return &Instance{Run: func() (float64, error) {
					if _, _, err := opt.Anneal(start, o); err != nil {
						return 0, err
					}
					return float64(iters), nil
				}}, nil
			},
		})
	}
}

func registerSimnet(bench string) {
	const ranks = 32
	Register(Workload{
		Name:   fmt.Sprintf("simnet/npb/%s-S-%d", bench, ranks),
		Family: "simnet",
		Doc:    fmt.Sprintf("NPB %s class S on %d ranks over the fluid simulator", bench, ranks),
		Unit:   "flows",
		Setup: func(Config) (*Instance, error) {
			g, err := hsgraph.RandomConnected(64, 16, 8, rng.New(7))
			if err != nil {
				return nil, err
			}
			nw, err := simnet.NewNetwork(g, simnet.Config{})
			if err != nil {
				return nil, err
			}
			spec, err := npb.New(bench, 'S', ranks)
			if err != nil {
				return nil, err
			}
			cfg := mpi.Config{FlopsPerHost: 100e9}
			return &Instance{Run: func() (float64, error) {
				stats, err := mpi.Run(nw, ranks, cfg, spec.Program())
				if err != nil {
					return 0, err
				}
				return float64(stats.FlowsCompleted), nil
			}}, nil
		},
	})
}

func registerFaultSweep() {
	Register(Workload{
		Name:   "fault/sweep/links/n=128,trials=6",
		Family: "fault",
		Doc:    "Monte-Carlo link-failure sweep, 3 fractions x 6 trials, full worker pool",
		Unit:   "trials",
		Setup: func(Config) (*Instance, error) {
			g, err := hsgraph.RandomConnected(128, 32, 10, rng.New(3))
			if err != nil {
				return nil, err
			}
			o := fault.SweepOptions{
				Model:     fault.UniformLinks,
				Fractions: []float64{0.02, 0.05, 0.10},
				Trials:    6,
				Seed:      3,
			}
			trials := float64(len(o.Fractions) * o.Trials)
			return &Instance{Run: func() (float64, error) {
				if _, err := fault.Sweep(g, o); err != nil {
					return 0, err
				}
				return trials, nil
			}}, nil
		},
	})
}

func registerCkpt() {
	const n, r = 1024, 24
	const kind = "orp.perf.graph"
	// One snapshot runs in tens of microseconds, far below the GC cycle
	// period, so single-op reps measure 2-3x apart depending on whether a
	// collection happens to land inside them. Batching 32 round trips per
	// rep stretches each rep across several GC cycles, which evens the
	// collector's share out and makes the medians reproducible.
	const batch = 32
	suffix := fmt.Sprintf("n=%d,r=%d", n, r)
	Register(Workload{
		Name:   "ckpt/encode/" + suffix,
		Family: "ckpt",
		Doc:    "graph state snapshot: order-preserving marshal + sealed envelope (x32 per rep)",
		Unit:   "bytes",
		Setup: func(Config) (*Instance, error) {
			g, err := evalGraph(n, r)
			if err != nil {
				return nil, err
			}
			return &Instance{Run: func() (float64, error) {
				var total float64
				for i := 0; i < batch; i++ {
					sealed := ckpt.Seal(kind, g.MarshalState())
					total += float64(len(sealed))
				}
				return total, nil
			}}, nil
		},
	})
	Register(Workload{
		Name:   "ckpt/decode/" + suffix,
		Family: "ckpt",
		Doc:    "graph state snapshot: envelope verify + order-preserving unmarshal (x32 per rep)",
		Unit:   "bytes",
		Setup: func(Config) (*Instance, error) {
			g, err := evalGraph(n, r)
			if err != nil {
				return nil, err
			}
			sealed := ckpt.Seal(kind, g.MarshalState())
			bytes := float64(len(sealed))
			return &Instance{Run: func() (float64, error) {
				var total float64
				for i := 0; i < batch; i++ {
					k, payload, err := ckpt.Open(sealed)
					if err != nil {
						return 0, err
					}
					if k != kind {
						return 0, fmt.Errorf("ckpt: kind %q", k)
					}
					if _, err := hsgraph.UnmarshalState(payload); err != nil {
						return 0, err
					}
					total += bytes
				}
				return total, nil
			}}, nil
		},
	})
}

// registerEvalOrbit pits the orbit-quotient evaluator against the plain
// bit-parallel sweep on the same 4-symmetric graph at n=4096. Both run a
// single worker, so the throughput ratio is the quotient speedup itself:
// the orbit evaluator sweeps one source per orbit (m/g of them) and
// scales the aggregates by g for bit-identical totals.
func registerEvalOrbit() {
	const n, m, r, sym = 4096, 1024, 12, 4
	pairs := float64(n) * float64(n-1) / 2
	suffix := fmt.Sprintf("n=%d,g=%d", n, sym)
	Register(Workload{
		Name:   "eval/orbit/" + suffix,
		Family: "eval",
		Doc:    "h-ASPL of a symmetric graph via one sweep per source orbit",
		Unit:   "pairs",
		Setup: func(Config) (*Instance, error) {
			g, err := topo.RandomSymmetric(n, m, r, sym, 1)
			if err != nil {
				return nil, err
			}
			want := g.Evaluate().TotalPath
			oe := hsgraph.NewOrbitEvaluator(1, sym)
			return &Instance{
				Run: func() (float64, error) {
					met, err := oe.Evaluate(g)
					if err != nil {
						return 0, err
					}
					if met.TotalPath != want {
						return 0, fmt.Errorf("orbit evaluation diverged: %d vs %d", met.TotalPath, want)
					}
					return pairs, nil
				},
				Close: oe.Close,
			}, nil
		},
	})
	Register(Workload{
		Name:   "eval/orbit-generic/" + suffix,
		Family: "eval",
		Doc:    "generic single-worker sweep of the eval/orbit graph (the comparator)",
		Unit:   "pairs",
		Setup: func(Config) (*Instance, error) {
			g, err := topo.RandomSymmetric(n, m, r, sym, 1)
			if err != nil {
				return nil, err
			}
			want := g.Evaluate().TotalPath
			ev := hsgraph.NewEvaluator(1)
			return &Instance{
				Run: func() (float64, error) {
					if met := ev.Evaluate(g); met.TotalPath != want {
						return 0, fmt.Errorf("generic evaluation diverged: %d vs %d", met.TotalPath, want)
					}
					return pairs, nil
				},
				Close: ev.Close,
			}, nil
		},
	})
}

// registerAnnealSymmetric is the tentpole's headline measurement: the SA
// move loop on a 4-symmetric n=4096 instance, symmetric move operators in
// both workloads, differing only in the evaluation rung — the generic
// ladder versus the orbit-quotient symmetric mode. Both produce the
// identical accepted-move sequence (the eval-equivalence property), so
// the moves/s ratio is exactly the orbit-quotient speedup; the issue's
// acceptance bar is >= 3x at this size. Explicit temperatures skip the
// calibration phase and a single worker keeps it a straight
// single-thread comparison, as in registerAnnealLadder.
func registerAnnealSymmetric() {
	const n, m, r, iters, sym = 4096, 1024, 12, 600, 4
	for _, w := range []struct {
		name string
		doc  string
		mode opt.EvalMode
	}{
		{"anneal/symmetric-ladder", "symmetric SA moves on the generic ladder rung (the comparator)", opt.EvalLadder},
		{"anneal/symmetric", "symmetric SA moves on the orbit-quotient rung", opt.EvalSymmetric},
	} {
		w := w
		Register(Workload{
			Name:   fmt.Sprintf("%s/n=%d,g=%d,iters=%d", w.name, n, sym, iters),
			Family: "anneal",
			Doc:    w.doc,
			Unit:   "moves",
			Setup: func(Config) (*Instance, error) {
				start, err := topo.RandomSymmetric(n, m, r, sym, 1)
				if err != nil {
					return nil, err
				}
				o := opt.Options{Iterations: iters, Seed: 2, Workers: 1,
					Moves: opt.SwingOnly, Eval: w.mode, Symmetry: sym,
					InitialTemp: 2000, FinalTemp: 10}
				return &Instance{Run: func() (float64, error) {
					if _, _, err := opt.Anneal(start, o); err != nil {
						return 0, err
					}
					return float64(iters), nil
				}}, nil
			},
		})
	}
}
