package perf

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// RunOptions drives a measurement pass over workloads.
type RunOptions struct {
	// Warmup repetitions run before any sample is taken (default 2;
	// short mode 1). They populate scratch buffers, page in code and
	// let the scheduler settle.
	Warmup int
	// Reps is the number of timed repetitions per workload (default 12;
	// short mode 6). Medians over Reps samples drive the comparator.
	Reps int
	// Short selects the reduced repetition counts and marks the report.
	Short bool
	// ProfileDir, when non-empty, captures a CPU profile of the timed
	// repetitions and a heap profile after them into
	// <dir>/<workload>.cpu.pprof and <dir>/<workload>.heap.pprof.
	// Samples carry pprof labels (workload, stage) so profiles remain
	// attributable when workers share code paths.
	ProfileDir string
	// Log, when non-nil, receives one progress line per workload.
	Log io.Writer
}

func (o *RunOptions) defaults() {
	if o.Warmup <= 0 {
		o.Warmup = 2
		if o.Short {
			o.Warmup = 1
		}
	}
	if o.Reps <= 0 {
		o.Reps = 12
		if o.Short {
			o.Reps = 6
		}
	}
}

// RunWorkloads measures every workload in ws and assembles the report.
func RunWorkloads(ws []Workload, o RunOptions) (*Report, error) {
	o.defaults()
	rep := NewReport(o.Short)
	for _, w := range ws {
		res, err := RunWorkload(w, o)
		if err != nil {
			return nil, fmt.Errorf("perf: workload %s: %w", w.Name, err)
		}
		rep.Workloads = append(rep.Workloads, res)
		if o.Log != nil {
			fmt.Fprintf(o.Log, "%-40s %12s ±%7s  %10.3g %s/s  %8.1f allocs/op\n",
				w.Name, fmtNs(res.MedianNs), fmtNs(res.MADNs), res.Throughput, res.Unit, res.AllocsPerOp)
		}
	}
	return rep, nil
}

// RunWorkload measures one workload: Setup, Warmup unrecorded reps, then
// Reps timed reps with allocation accounting around the whole timed
// block. With a ProfileDir the timed block runs under a CPU profile and
// pprof labels.
func RunWorkload(w Workload, o RunOptions) (WorkloadResult, error) {
	o.defaults()
	inst, err := w.Setup(Config{Short: o.Short})
	if err != nil {
		return WorkloadResult{}, err
	}
	defer inst.close()

	for i := 0; i < o.Warmup; i++ {
		if _, err := inst.Run(); err != nil {
			return WorkloadResult{}, fmt.Errorf("warmup rep %d: %w", i, err)
		}
	}

	res := WorkloadResult{
		Name:   w.Name,
		Family: w.Family,
		Unit:   w.Unit,
		Warmup: o.Warmup,
		Reps:   o.Reps,
	}

	var stopProfile func() error
	if o.ProfileDir != "" {
		stopProfile, err = startCPUProfile(o.ProfileDir, w.Name)
		if err != nil {
			return WorkloadResult{}, err
		}
	}

	samples := make([]float64, 0, o.Reps)
	var items float64
	var runErr error
	// GC barrier: without it, the heap state earlier workloads leave
	// behind decides how much collector work lands inside this timed
	// block, and fast allocation-heavy workloads (ckpt) measure 2-3x
	// apart across otherwise identical runs. Starting every workload
	// from a collected heap is what makes back-to-back reports
	// comparable.
	runtime.GC()
	// The labels cover the timed repetitions, so every CPU sample taken
	// inside the workload body (including its worker goroutines, which
	// inherit or set their own stage labels) is attributable.
	pprof.Do(context.Background(), pprof.Labels("workload", w.Name, "stage", w.Family), func(context.Context) {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < o.Reps; i++ {
			t0 := time.Now()
			it, err := inst.Run()
			dt := time.Since(t0)
			if err != nil {
				runErr = fmt.Errorf("rep %d: %w", i, err)
				return
			}
			items = it
			samples = append(samples, float64(dt.Nanoseconds()))
		}
		runtime.ReadMemStats(&m1)
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(o.Reps)
		res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(o.Reps)
	})
	if stopProfile != nil {
		if err := stopProfile(); err != nil {
			return WorkloadResult{}, err
		}
		if err := writeHeapProfile(o.ProfileDir, w.Name); err != nil {
			return WorkloadResult{}, err
		}
	}
	if runErr != nil {
		return WorkloadResult{}, runErr
	}

	res.SamplesNs = samples
	res.MedianNs, res.MADNs = MedianMAD(samples)
	res.ItemsPerOp = items
	if res.MedianNs > 0 {
		res.Throughput = items / (res.MedianNs / 1e9)
	}
	return res, nil
}

// startCPUProfile begins a CPU profile into dir/<name>.cpu.pprof and
// returns the stop-and-close function.
func startCPUProfile(dir, name string) (func() error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, profileFileName(name)+".cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// writeHeapProfile snapshots the live heap after a workload's timed reps.
func writeHeapProfile(dir, name string) error {
	f, err := os.Create(filepath.Join(dir, profileFileName(name)+".heap.pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the retained set before the snapshot
	return pprof.Lookup("heap").WriteTo(f, 0)
}

// profileFileName flattens a workload name into a file-system-safe stem.
func profileFileName(name string) string {
	return strings.NewReplacer("/", "_", ",", "_", "=", "-").Replace(name)
}

// MedianMAD returns the median and the median absolute deviation of xs.
// Empty input yields zeros.
func MedianMAD(xs []float64) (median, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	median = medianOf(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - median)
	}
	return median, medianOf(devs)
}

func medianOf(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// fmtNs renders nanoseconds with an adaptive unit for progress lines.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
