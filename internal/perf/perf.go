// Package perf is the continuous performance-regression harness: a
// registry of canonical in-process workloads covering every hot path of
// the repository (h-ASPL evaluation, the SA move loop, NPB flow
// simulation, fault Monte-Carlo sweeps, checkpoint codecs), a measurement
// harness that runs each with warmup and repetitions and reports
// median/MAD wall time plus allocation and domain-throughput figures, a
// versioned JSON report schema (the BENCH_*.json trajectory at the repo
// root), and a noise-aware comparator that CI gates on.
//
// The same workload bodies back both cmd/orpbench and the repository's
// `go test -bench` benchmarks (see the root perf_bridge_test.go), so the
// two measurement paths can never drift apart.
package perf

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Workload is one canonical benchmark: a named, self-contained piece of
// work whose single repetition is meaningful to time on its own.
type Workload struct {
	// Name identifies the workload across reports; it embeds every
	// size parameter (e.g. "eval/sharded/n=1024,r=24") because the
	// comparator matches workloads by name and a silent size change
	// would corrupt the trajectory.
	Name string
	// Family is the coarse grouping: "eval", "anneal", "simnet",
	// "fault", "ckpt" or "serve". It becomes the pprof `stage` label of
	// profiled runs.
	Family string
	// Doc is a one-line description for -list.
	Doc string
	// Unit names the domain items one repetition processes ("pairs",
	// "moves", "flows", "trials", "bytes"); throughput is reported as
	// Unit per second.
	Unit string
	// Setup builds the workload instance. All expensive one-time work
	// (graph construction, reference results) happens here, outside the
	// timed region.
	Setup func(cfg Config) (*Instance, error)
}

// Config tunes a workload instance. Short reduces repetition counts in
// the harness but never the per-repetition work: a short-mode sample is
// noisier, not smaller, so short CI runs stay comparable against a
// full-mode baseline.
type Config struct {
	Short bool
}

// Instance is a set-up workload ready to run repetitions.
type Instance struct {
	// Run performs one repetition and returns the number of domain
	// items (Workload.Unit) it processed. It must do the same work on
	// every call.
	Run func() (items float64, err error)
	// Close releases instance resources (worker pools). May be nil.
	Close func()
}

// close is the nil-safe Close.
func (in *Instance) close() {
	if in != nil && in.Close != nil {
		in.Close()
	}
}

var (
	registry []Workload
	byName   = map[string]int{}
)

// Register adds a workload to the global registry. Duplicate names and
// unknown families are programming errors and panic at init time.
func Register(w Workload) {
	if w.Name == "" || w.Setup == nil {
		panic("perf: workload needs a name and a setup")
	}
	switch w.Family {
	case "eval", "anneal", "simnet", "fault", "ckpt", "serve":
	default:
		panic(fmt.Sprintf("perf: workload %q has unknown family %q", w.Name, w.Family))
	}
	if _, dup := byName[w.Name]; dup {
		panic(fmt.Sprintf("perf: duplicate workload %q", w.Name))
	}
	byName[w.Name] = len(registry)
	registry = append(registry, w)
}

// Workloads returns the registered workloads in registration order.
func Workloads() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the workload registered under name, or nil.
func Lookup(name string) *Workload {
	i, ok := byName[name]
	if !ok {
		return nil
	}
	w := registry[i]
	return &w
}

// Names returns the registered workload names with the given prefix
// (all names when prefix is empty), in registration order.
func Names(prefix string) []string {
	var out []string
	for _, w := range registry {
		if strings.HasPrefix(w.Name, prefix) {
			out = append(out, w.Name)
		}
	}
	return out
}

// Match returns the workloads whose names match re (all when re is nil),
// in registration order.
func Match(re *regexp.Regexp) []Workload {
	var out []Workload
	for _, w := range registry {
		if re == nil || re.MatchString(w.Name) {
			out = append(out, w)
		}
	}
	return out
}

// Families returns the sorted set of families present in the workload
// results.
func Families(results []WorkloadResult) []string {
	set := map[string]bool{}
	for _, r := range results {
		set[r.Family] = true
	}
	fams := make([]string, 0, len(set))
	for f := range set {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	return fams
}
