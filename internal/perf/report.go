package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/buildinfo"
)

// ReportSchemaVersion is bumped whenever an existing report field changes
// meaning (never for additions); the comparator refuses to mix versions.
const ReportSchemaVersion = 1

// ReportKind tags the JSON document so a BENCH_*.json file is
// self-identifying.
const ReportKind = "orp.bench"

// Report is one full measurement pass: machine and build fingerprints
// plus per-workload results. It is the unit of the BENCH_*.json
// trajectory at the repository root.
type Report struct {
	Schema    int    `json:"schema"`
	Kind      string `json:"kind"`
	CreatedAt string `json:"createdAt"` // RFC3339, wall clock of the run
	// Short marks reduced-repetition runs (CI smoke); comparisons
	// against a full-mode baseline remain valid because short mode
	// never shrinks the per-repetition work.
	Short bool `json:"short,omitempty"`

	Machine   Machine          `json:"machine"`
	Build     buildinfo.Info   `json:"build"`
	Workloads []WorkloadResult `json:"workloads"`
}

// Machine fingerprints the hardware and runtime configuration a report
// was measured on. Reports from different fingerprints are comparable
// only with care; the comparator prints a warning.
type Machine struct {
	CPU        string `json:"cpu,omitempty"` // e.g. /proc/cpuinfo model name
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

// WorkloadResult is one workload's measurement: raw samples plus the
// derived statistics the comparator consumes.
type WorkloadResult struct {
	Name   string `json:"name"`
	Family string `json:"family"`
	Unit   string `json:"unit,omitempty"`
	Warmup int    `json:"warmup"`
	Reps   int    `json:"reps"`

	// SamplesNs are the per-repetition wall times in nanoseconds, in
	// run order (kept raw so future tooling can re-derive statistics).
	SamplesNs []float64 `json:"samplesNs"`
	// MedianNs/MADNs summarize SamplesNs robustly: the median ignores
	// scheduler spikes, the MAD measures the run's own noise level and
	// scales the comparator's threshold.
	MedianNs float64 `json:"medianNs"`
	MADNs    float64 `json:"madNs"`

	AllocsPerOp float64 `json:"allocsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`

	// ItemsPerOp is the domain work of one repetition (Unit items);
	// Throughput is ItemsPerOp at the median rate, in Unit/s.
	ItemsPerOp float64 `json:"itemsPerOp,omitempty"`
	Throughput float64 `json:"throughput,omitempty"`
}

// NewReport returns an empty report stamped with the current machine and
// build fingerprints.
func NewReport(short bool) *Report {
	return &Report{
		Schema:    ReportSchemaVersion,
		Kind:      ReportKind,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Short:     short,
		Machine: Machine{
			CPU:        cpuModel(),
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
		},
		Build: buildinfo.Get(),
	}
}

// Validate checks the structural invariants a trajectory file must hold:
// the schema version, the kind tag, and per-workload consistency between
// raw samples and derived statistics.
func (r *Report) Validate() error {
	if r.Kind != ReportKind {
		return fmt.Errorf("perf: report kind %q, want %q", r.Kind, ReportKind)
	}
	if r.Schema != ReportSchemaVersion {
		return fmt.Errorf("perf: report schema %d, this build reads %d", r.Schema, ReportSchemaVersion)
	}
	if len(r.Workloads) == 0 {
		return fmt.Errorf("perf: report has no workloads")
	}
	seen := map[string]bool{}
	for _, w := range r.Workloads {
		if w.Name == "" || w.Family == "" {
			return fmt.Errorf("perf: workload with empty name or family")
		}
		if seen[w.Name] {
			return fmt.Errorf("perf: duplicate workload %q in report", w.Name)
		}
		seen[w.Name] = true
		if w.Reps <= 0 || len(w.SamplesNs) != w.Reps {
			return fmt.Errorf("perf: workload %s: %d samples for %d reps", w.Name, len(w.SamplesNs), w.Reps)
		}
		if w.MedianNs <= 0 {
			return fmt.Errorf("perf: workload %s: non-positive median %v", w.Name, w.MedianNs)
		}
		for i, s := range w.SamplesNs {
			if s <= 0 {
				return fmt.Errorf("perf: workload %s: non-positive sample %d", w.Name, i)
			}
		}
		if med, mad := MedianMAD(w.SamplesNs); !closeTo(med, w.MedianNs) || !closeTo(mad, w.MADNs) {
			return fmt.Errorf("perf: workload %s: stored median/MAD (%v/%v) disagree with samples (%v/%v)",
				w.Name, w.MedianNs, w.MADNs, med, mad)
		}
	}
	return nil
}

// closeTo tolerates the round-trip error of JSON float encoding.
func closeTo(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path via a buffered writer.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := r.Write(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses and validates a report.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("perf: parsing report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadReportFile reads, parses and validates the report at path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// cpuModel reads the CPU model name, best-effort (Linux /proc/cpuinfo;
// empty elsewhere — the field is informational, not load-bearing).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}
