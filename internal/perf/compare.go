package perf

import (
	"fmt"
	"io"
)

// CompareOptions tunes the regression gate. The zero value selects the
// defaults.
type CompareOptions struct {
	// MinRel is the floor on the relative regression threshold
	// (default 0.10): even a perfectly quiet workload must slow down by
	// at least this fraction before the gate fires, because sub-10%
	// medians-of-a-dozen-reps shifts are routinely machine state, not
	// code.
	MinRel float64
	// MADScale converts measured noise into threshold (default 6): the
	// threshold is MADScale times the worse of the two runs' relative
	// MADs. For near-normal noise MAD is about 0.67 sigma, so 6 MADs is
	// about a 4-sigma gate per workload.
	MADScale float64
	// Scale relaxes (or tightens) every threshold multiplicatively
	// (default 1). CI on shared runners compares with Scale > 1.
	Scale float64
}

func (o *CompareOptions) defaults() {
	if o.MinRel == 0 {
		o.MinRel = 0.10
	}
	if o.MADScale == 0 {
		o.MADScale = 6
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
}

// Delta is the comparison of one workload across two reports.
type Delta struct {
	Name        string  `json:"name"`
	OldMedianNs float64 `json:"oldMedianNs"`
	NewMedianNs float64 `json:"newMedianNs"`
	// Ratio is new/old median wall time (> 1 means slower).
	Ratio float64 `json:"ratio"`
	// Threshold is the relative change this workload had to exceed for
	// a verdict, after noise scaling.
	Threshold   float64 `json:"threshold"`
	Regression  bool    `json:"regression,omitempty"`
	Improvement bool    `json:"improvement,omitempty"`
}

// CompareResult is the full outcome of comparing two reports.
type CompareResult struct {
	Deltas []Delta `json:"deltas"`
	// MissingInNew lists baseline workloads absent from the new report
	// (a silently dropped workload must not look like a pass);
	// MissingInOld lists new workloads with no baseline yet.
	MissingInNew []string `json:"missingInNew,omitempty"`
	MissingInOld []string `json:"missingInOld,omitempty"`
	Regressions  int      `json:"regressions"`
	Improvements int      `json:"improvements"`
	// MachineMismatch notes that the two reports carry different
	// machine fingerprints; thresholds do not account for cross-machine
	// variance.
	MachineMismatch bool `json:"machineMismatch,omitempty"`
}

// Compare evaluates new against the old baseline workload by workload.
// Workloads are matched by name; each gets a noise-aware threshold
// derived from its own measured MAD in both runs.
func Compare(old, new *Report, o CompareOptions) (*CompareResult, error) {
	o.defaults()
	if old.Schema != new.Schema {
		return nil, fmt.Errorf("perf: cannot compare schema %d against %d", old.Schema, new.Schema)
	}
	res := &CompareResult{
		MachineMismatch: old.Machine.CPU != new.Machine.CPU ||
			old.Machine.GOMAXPROCS != new.Machine.GOMAXPROCS ||
			old.Machine.GOARCH != new.Machine.GOARCH,
	}
	newByName := map[string]WorkloadResult{}
	for _, w := range new.Workloads {
		newByName[w.Name] = w
	}
	oldSeen := map[string]bool{}
	for _, ow := range old.Workloads {
		oldSeen[ow.Name] = true
		nw, ok := newByName[ow.Name]
		if !ok {
			res.MissingInNew = append(res.MissingInNew, ow.Name)
			continue
		}
		d := Delta{
			Name:        ow.Name,
			OldMedianNs: ow.MedianNs,
			NewMedianNs: nw.MedianNs,
			Ratio:       nw.MedianNs / ow.MedianNs,
			Threshold:   threshold(ow, nw, o),
		}
		if d.Ratio-1 > d.Threshold {
			d.Regression = true
			res.Regressions++
		} else if 1-d.Ratio > d.Threshold {
			d.Improvement = true
			res.Improvements++
		}
		res.Deltas = append(res.Deltas, d)
	}
	for _, nw := range new.Workloads {
		if !oldSeen[nw.Name] {
			res.MissingInOld = append(res.MissingInOld, nw.Name)
		}
	}
	return res, nil
}

// threshold derives the per-workload relative threshold: the configured
// floor, raised by the measured noise of whichever run was noisier.
func threshold(old, new WorkloadResult, o CompareOptions) float64 {
	noise := old.MADNs / old.MedianNs
	if n := new.MADNs / new.MedianNs; n > noise {
		noise = n
	}
	t := o.MADScale * noise
	if t < o.MinRel {
		t = o.MinRel
	}
	return t * o.Scale
}

// Format renders the comparison as an aligned text table, regressions
// first, and returns the number of bytes written errors aside.
func (r *CompareResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%-44s %12s %12s %8s %9s  %s\n", "workload", "old", "new", "ratio", "threshold", "verdict")
	write := func(d Delta, verdict string) {
		fmt.Fprintf(w, "%-44s %12s %12s %8.3f %8.1f%%  %s\n",
			d.Name, fmtNs(d.OldMedianNs), fmtNs(d.NewMedianNs), d.Ratio, 100*d.Threshold, verdict)
	}
	for _, d := range r.Deltas {
		if d.Regression {
			write(d, "REGRESSION")
		}
	}
	for _, d := range r.Deltas {
		if d.Improvement {
			write(d, "improvement")
		}
	}
	for _, d := range r.Deltas {
		if !d.Regression && !d.Improvement {
			write(d, "ok")
		}
	}
	for _, name := range r.MissingInNew {
		fmt.Fprintf(w, "%-44s missing from new report (baseline workload dropped)\n", name)
	}
	for _, name := range r.MissingInOld {
		fmt.Fprintf(w, "%-44s new workload (no baseline yet)\n", name)
	}
	if r.MachineMismatch {
		fmt.Fprintln(w, "warning: reports were measured on different machine fingerprints; treat verdicts as advisory")
	}
}

// Gate reports whether the comparison should fail a CI gate: any
// regression, or any baseline workload silently missing from the new
// report.
func (r *CompareResult) Gate() bool {
	return r.Regressions > 0 || len(r.MissingInNew) > 0
}
