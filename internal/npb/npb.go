// Package npb provides communication skeletons of the NAS Parallel
// Benchmarks (MPI version 3.3.1) for the simulated MPI of package mpi.
// A skeleton reproduces a benchmark's communication pattern and message
// volumes plus a flops-based compute model; the numerics themselves are
// not executed (the network comparison of the paper depends on traffic,
// not on arithmetic results).
//
// Patterns, per the paper's §6.3 discussion:
//
//	EP  - embarrassingly parallel, negligible communication
//	IS  - bucket sort: all-to-all (counts) + all-to-all-v (keys)
//	FT  - 3-D FFT: large transposes (all-to-all)
//	CG  - conjugate gradient: row/column exchanges + dot-product reductions
//	MG  - multigrid: 3-D halo exchanges across all levels (long distance)
//	LU  - SSOR: 2-D wavefront pipelines of small messages
//	BT  - block-tridiagonal ADI: face exchanges + line-solve pipelines
//	SP  - scalar-pentadiagonal ADI: like BT with thinner messages
package npb

import (
	"fmt"
	"math"

	"repro/internal/mpi"
)

// Class is an NPB problem class.
type Class byte

// Supported classes. S is the sample size (used in tests); the paper runs
// class A for IS and FT and class B for the rest.
const (
	ClassS Class = 'S'
	ClassA Class = 'A'
	ClassB Class = 'B'
)

// Spec is a configured benchmark instance. Iterations may be reduced
// before Build to shorten simulations; reported Mop/s are unaffected in
// topology comparisons because time scales linearly with iterations.
type Spec struct {
	Name       string
	Class      Class
	Procs      int
	Iterations int

	// geometry (per benchmark; zero where unused)
	nx, ny, nz int     // grid dimensions
	totalKeys  float64 // IS
	pairs      float64 // EP: number of random pairs
	cgN        int     // CG: matrix order
	cgNonzer   int     // CG: nonzeros parameter

	program func(s *Spec, r *mpi.Rank) error
	ops     float64 // nominal operation count for Mop/s reporting
}

// Benchmarks lists the supported benchmark names in canonical order.
var Benchmarks = []string{"EP", "IS", "FT", "CG", "MG", "LU", "BT", "SP"}

// New returns a configured benchmark. procs must be a power of two
// (a perfect square additionally for BT and SP, mirroring NPB's own
// constraints).
func New(name string, class Class, procs int) (*Spec, error) {
	if procs < 1 || procs&(procs-1) != 0 {
		return nil, fmt.Errorf("npb: procs %d must be a power of two", procs)
	}
	switch class {
	case ClassS, ClassA, ClassB:
	default:
		return nil, fmt.Errorf("npb: unknown class %q", class)
	}
	s := &Spec{Name: name, Class: class, Procs: procs}
	switch name {
	case "EP":
		s.pairs = math.Pow(2, map[Class]float64{ClassS: 24, ClassA: 28, ClassB: 30}[class])
		s.Iterations = 1
		s.program = runEP
		s.ops = s.pairs * 50
	case "IS":
		s.totalKeys = math.Pow(2, map[Class]float64{ClassS: 16, ClassA: 23, ClassB: 25}[class])
		s.Iterations = 10
		s.program = runIS
		s.ops = s.totalKeys * float64(s.Iterations) * 25
	case "FT":
		dims := map[Class][3]int{ClassS: {64, 64, 64}, ClassA: {256, 256, 128}, ClassB: {512, 256, 256}}[class]
		s.nx, s.ny, s.nz = dims[0], dims[1], dims[2]
		s.Iterations = map[Class]int{ClassS: 6, ClassA: 6, ClassB: 20}[class]
		s.program = runFT
		total := float64(s.nx) * float64(s.ny) * float64(s.nz)
		s.ops = float64(s.Iterations) * 5 * total * math.Log2(total)
	case "CG":
		s.cgN = map[Class]int{ClassS: 1400, ClassA: 14000, ClassB: 75000}[class]
		s.cgNonzer = map[Class]int{ClassS: 7, ClassA: 11, ClassB: 13}[class]
		s.Iterations = map[Class]int{ClassS: 15, ClassA: 15, ClassB: 75}[class]
		s.program = runCG
		nnz := float64(s.cgN) * float64(s.cgNonzer) * float64(s.cgNonzer+1)
		s.ops = float64(s.Iterations) * 25 * 4 * nnz
	case "MG":
		n := map[Class]int{ClassS: 32, ClassA: 256, ClassB: 256}[class]
		s.nx, s.ny, s.nz = n, n, n
		s.Iterations = map[Class]int{ClassS: 4, ClassA: 4, ClassB: 20}[class]
		s.program = runMG
		total := float64(n) * float64(n) * float64(n)
		s.ops = float64(s.Iterations) * total * 30
	case "LU":
		n := map[Class]int{ClassS: 12, ClassA: 64, ClassB: 102}[class]
		s.nx, s.ny, s.nz = n, n, n
		s.Iterations = map[Class]int{ClassS: 50, ClassA: 250, ClassB: 250}[class]
		s.program = runLU
		total := float64(n) * float64(n) * float64(n)
		s.ops = float64(s.Iterations) * total * 150
	case "BT":
		if !isSquare(procs) {
			return nil, fmt.Errorf("npb: BT needs a square number of processes, got %d", procs)
		}
		n := map[Class]int{ClassS: 12, ClassA: 64, ClassB: 102}[class]
		s.nx, s.ny, s.nz = n, n, n
		s.Iterations = map[Class]int{ClassS: 60, ClassA: 200, ClassB: 200}[class]
		s.program = runBT
		total := float64(n) * float64(n) * float64(n)
		s.ops = float64(s.Iterations) * total * 250
	case "SP":
		if !isSquare(procs) {
			return nil, fmt.Errorf("npb: SP needs a square number of processes, got %d", procs)
		}
		n := map[Class]int{ClassS: 12, ClassA: 64, ClassB: 102}[class]
		s.nx, s.ny, s.nz = n, n, n
		s.Iterations = map[Class]int{ClassS: 100, ClassA: 400, ClassB: 400}[class]
		s.program = runSP
		total := float64(n) * float64(n) * float64(n)
		s.ops = float64(s.Iterations) * total * 120
	default:
		return nil, fmt.Errorf("npb: unknown benchmark %q (have %v)", name, Benchmarks)
	}
	return s, nil
}

func isSquare(p int) bool {
	r := int(math.Round(math.Sqrt(float64(p))))
	return r*r == p
}

// NominalOps returns the operation count used for Mop/s reporting.
func (s *Spec) NominalOps() float64 { return s.ops }

// Program returns the per-rank program for this benchmark.
func (s *Spec) Program() func(r *mpi.Rank) error {
	return func(r *mpi.Rank) error { return s.program(s, r) }
}

// --- EP ---

func runEP(s *Spec, r *mpi.Rank) error {
	perRank := s.pairs / float64(s.Procs)
	for it := 0; it < s.Iterations; it++ {
		r.Compute(perRank * 50)
	}
	// Final statistics: three small allreduces (sx, sy, counts).
	r.Allreduce(8)
	r.Allreduce(8)
	r.Allreduce(80)
	return nil
}

// --- IS ---

func runIS(s *Spec, r *mpi.Rank) error {
	p := float64(s.Procs)
	keysPerRank := s.totalKeys / p
	const buckets = 1024
	sizes := make([]float64, s.Procs)
	for d := range sizes {
		// Uniform keys: each rank ships ~1/p of its keys to each peer.
		sizes[d] = 4 * keysPerRank / p
	}
	for it := 0; it < s.Iterations; it++ {
		r.Compute(keysPerRank * 10) // local bucket counting
		r.Allreduce(4 * buckets)    // global bucket histogram
		r.Alltoall(4 * buckets / p) // per-destination key counts
		r.Alltoallv(sizes)          // key redistribution
		r.Compute(keysPerRank * 15) // local ranking
	}
	r.Allreduce(8) // verification
	return nil
}

// --- FT ---

func runFT(s *Spec, r *mpi.Rank) error {
	p := float64(s.Procs)
	total := float64(s.nx) * float64(s.ny) * float64(s.nz)
	perRank := total / p
	fftFlops := 5 * perRank * math.Log2(total)
	transposeBytes := 16 * perRank / p // complex128 blocks to each peer
	// Initial forward FFT.
	r.Compute(fftFlops)
	r.Alltoall(transposeBytes)
	for it := 0; it < s.Iterations; it++ {
		r.Compute(perRank * 8) // evolve
		r.Compute(fftFlops)    // inverse FFT (local passes)
		r.Alltoall(transposeBytes)
		r.Allreduce(16) // checksum
	}
	return nil
}

// --- CG ---

func runCG(s *Spec, r *mpi.Rank) error {
	// 2-D process grid as in NPB CG: npcols x nprows with
	// npcols = 2^ceil(log2(p)/2), nprows = p/npcols.
	p := s.Procs
	logp := ilog2(p)
	npcols := 1 << ((logp + 1) / 2)
	nprows := p / npcols
	row := r.ID() / npcols
	col := r.ID() % npcols
	// Transpose partner (square grids swap (row, col); 2:1 grids pair the
	// half-planes as NPB's setup does).
	var transpose int
	if npcols == nprows {
		transpose = col*nprows + row
	} else {
		// npcols == 2*nprows: pair column blocks.
		transpose = (col%nprows)*npcols + row + (col/nprows)*nprows
	}
	chunk := 8 * float64(s.cgN) / float64(nprows) // vector segment bytes
	nnzPerRank := float64(s.cgN) * float64(s.cgNonzer) * float64(s.cgNonzer+1) / float64(p)
	const cgInner = 25
	tag := 1000
	for it := 0; it < s.Iterations; it++ {
		for inner := 0; inner < cgInner; inner++ {
			r.Compute(2 * nnzPerRank) // sparse matvec
			// Sum partial results across the row (recursive halving).
			for k := 1; k < npcols; k <<= 1 {
				partner := row*npcols + (col ^ k)
				r.SendRecv(partner, chunk, partner, chunk, tag)
			}
			// Transpose exchange to redistribute the vector.
			if transpose != r.ID() {
				r.SendRecv(transpose, chunk, transpose, chunk, tag+1)
			}
			r.Compute(4 * float64(s.cgN) / float64(p) * 8) // axpy etc.
			r.Allreduce(8)                                 // dot product
		}
		r.Allreduce(8) // residual norm
	}
	return nil
}

func ilog2(p int) int {
	b := 0
	for 1<<(b+1) <= p {
		b++
	}
	return b
}

// --- MG ---

func runMG(s *Spec, r *mpi.Rank) error {
	px, py, pz := factor3(s.Procs)
	coords := [3]int{r.ID() % px, (r.ID() / px) % py, r.ID() / (px * py)}
	dims := [3]int{px, py, pz}
	// Levels from the finest grid down to 4 points per side.
	for it := 0; it < s.Iterations; it++ {
		for n := s.nx; n >= 4; n /= 2 {
			local := [3]float64{
				math.Max(1, float64(n)/float64(px)),
				math.Max(1, float64(n)/float64(py)),
				math.Max(1, float64(n)/float64(pz)),
			}
			// Two stencil sweeps per level per V-cycle leg (down + up).
			for sweep := 0; sweep < 2; sweep++ {
				exchangeHalo3D(r, coords, dims, local, 2100+sweep)
				r.Compute(local[0] * local[1] * local[2] * 15)
			}
		}
		r.Allreduce(8) // norm
	}
	return nil
}

// exchangeHalo3D exchanges the six faces of the local box with the
// neighbouring ranks on a 3-D torus of processes.
func exchangeHalo3D(r *mpi.Rank, coords, dims [3]int, local [3]float64, tag int) {
	px, py := dims[0], dims[1]
	id := func(c [3]int) int { return c[0] + px*(c[1]+py*c[2]) }
	faces := [3]float64{
		8 * local[1] * local[2],
		8 * local[0] * local[2],
		8 * local[0] * local[1],
	}
	for d := 0; d < 3; d++ {
		if dims[d] == 1 {
			continue
		}
		up, down := coords, coords
		up[d] = (coords[d] + 1) % dims[d]
		down[d] = (coords[d] - 1 + dims[d]) % dims[d]
		r.SendRecv(id(up), faces[d], id(down), faces[d], tag+10*d)
		r.SendRecv(id(down), faces[d], id(up), faces[d], tag+10*d+1)
	}
}

// factor3 splits p (a power of two) into three factors as equal as
// possible, largest first on x.
func factor3(p int) (int, int, int) {
	f := [3]int{1, 1, 1}
	i := 0
	for p > 1 {
		f[i%3] *= 2
		p /= 2
		i++
	}
	return f[0], f[1], f[2]
}

// --- LU ---

func runLU(s *Spec, r *mpi.Rank) error {
	// 2-D grid px x py; wavefront pipeline over nz planes.
	px, py := factor2(s.Procs)
	ix, iy := r.ID()%px, r.ID()/px
	stripX := 8 * 5 * math.Max(1, float64(s.nx)/float64(px))
	stripY := 8 * 5 * math.Max(1, float64(s.ny)/float64(py))
	planeFlops := float64(s.nx) * float64(s.ny) / float64(s.Procs) * 100
	north, south := r.ID()-px, r.ID()+px
	west, east := r.ID()-1, r.ID()+1
	for it := 0; it < s.Iterations; it++ {
		// Lower-triangular sweep: wavefront from (0,0).
		for k := 0; k < s.nz; k++ {
			if iy > 0 {
				r.Recv(north, 3000+k)
			}
			if ix > 0 {
				r.Recv(west, 3500+k)
			}
			r.Compute(planeFlops)
			if iy < py-1 {
				r.Send(south, stripX, 3000+k)
			}
			if ix < px-1 {
				r.Send(east, stripY, 3500+k)
			}
		}
		// Upper-triangular sweep: wavefront from (px-1, py-1).
		for k := 0; k < s.nz; k++ {
			if iy < py-1 {
				r.Recv(south, 4000+k)
			}
			if ix < px-1 {
				r.Recv(east, 4500+k)
			}
			r.Compute(planeFlops)
			if iy > 0 {
				r.Send(north, stripX, 4000+k)
			}
			if ix > 0 {
				r.Send(west, stripY, 4500+k)
			}
		}
		r.Allreduce(40) // residual vector
	}
	return nil
}

func factor2(p int) (int, int) {
	px := 1
	for px*px < p {
		px *= 2
	}
	return px, p / px
}

// --- BT / SP ---

func runBT(s *Spec, r *mpi.Rank) error { return runADI(s, r, 8*5, 250, 1) }
func runSP(s *Spec, r *mpi.Rank) error { return runADI(s, r, 8*3, 120, 2) }

// runADI models the alternating-direction-implicit pattern shared by BT
// and SP on a square process grid: per iteration, a face exchange
// (copy_faces) followed by pipelined line solves along x then y (z is
// local in this 2-D decomposition).
func runADI(s *Spec, r *mpi.Rank, wordsPerPoint float64, flopsPerPoint float64, tagBase int) error {
	q := int(math.Round(math.Sqrt(float64(s.Procs))))
	ix, iy := r.ID()%q, r.ID()/q
	cells := float64(s.nx) * float64(s.ny) * float64(s.nz) / float64(s.Procs)
	face := wordsPerPoint * math.Pow(cells, 2.0/3)
	lineMsg := wordsPerPoint * math.Max(1, float64(s.ny)/float64(q)) * math.Max(1, float64(s.nz))
	for it := 0; it < s.Iterations; it++ {
		// copy_faces: exchange with the four grid neighbours (periodic).
		east := iy*q + (ix+1)%q
		west := iy*q + (ix-1+q)%q
		north := ((iy+1)%q)*q + ix
		south := ((iy-1+q)%q)*q + ix
		r.SendRecv(east, face, west, face, 5000+tagBase)
		r.SendRecv(west, face, east, face, 5010+tagBase)
		r.SendRecv(north, face, south, face, 5020+tagBase)
		r.SendRecv(south, face, north, face, 5030+tagBase)
		// x_solve: pipeline along the row.
		if ix > 0 {
			r.Recv(iy*q+ix-1, 5100+tagBase)
		}
		r.Compute(cells * flopsPerPoint / 3)
		if ix < q-1 {
			r.Send(iy*q+ix+1, lineMsg, 5100+tagBase)
		}
		// back substitution sweeps the other way
		if ix < q-1 {
			r.Recv(iy*q+ix+1, 5110+tagBase)
		}
		if ix > 0 {
			r.Send(iy*q+ix-1, lineMsg, 5110+tagBase)
		}
		// y_solve: pipeline along the column.
		if iy > 0 {
			r.Recv((iy-1)*q+ix, 5200+tagBase)
		}
		r.Compute(cells * flopsPerPoint / 3)
		if iy < q-1 {
			r.Send((iy+1)*q+ix, lineMsg, 5200+tagBase)
		}
		if iy < q-1 {
			r.Recv((iy+1)*q+ix, 5210+tagBase)
		}
		if iy > 0 {
			r.Send((iy-1)*q+ix, lineMsg, 5210+tagBase)
		}
		// z_solve is rank-local in this decomposition.
		r.Compute(cells * flopsPerPoint / 3)
	}
	r.Allreduce(40)
	return nil
}
