package npb

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/simnet"
	"repro/internal/topo"
)

func testNet(t testing.TB, hosts int) *simnet.Network {
	t.Helper()
	sp, err := topo.FatTree(4) // 16 hosts
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(hosts)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := simnet.NewNetwork(g, simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestAllBenchmarksRunClassS(t *testing.T) {
	nw := testNet(t, 16)
	for _, name := range Benchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := New(name, ClassS, 16)
			if err != nil {
				t.Fatal(err)
			}
			// Keep the pipelined benchmarks short in unit tests.
			if s.Iterations > 5 {
				s.Iterations = 5
			}
			stats, err := mpi.Run(nw, 16, mpi.Config{}, s.Program())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if stats.Elapsed <= 0 {
				t.Fatalf("%s: zero elapsed time", name)
			}
			if s.NominalOps() <= 0 {
				t.Fatalf("%s: zero nominal ops", name)
			}
		})
	}
}

func TestBenchmarkDeterminism(t *testing.T) {
	run := func() float64 {
		nw := testNet(t, 16)
		s, err := New("IS", ClassS, 16)
		if err != nil {
			t.Fatal(err)
		}
		s.Iterations = 3
		stats, err := mpi.Run(nw, 16, mpi.Config{}, s.Program())
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("IS not deterministic: %v vs %v", a, b)
	}
}

func TestTrafficProfiles(t *testing.T) {
	// EP must move orders of magnitude fewer bytes than FT at the same
	// scale; that separation is what drives the paper's per-benchmark
	// results.
	nw := testNet(t, 16)
	bytesOf := func(name string) float64 {
		s, err := New(name, ClassS, 16)
		if err != nil {
			t.Fatal(err)
		}
		if s.Iterations > 3 {
			s.Iterations = 3
		}
		stats, err := mpi.Run(nw, 16, mpi.Config{}, s.Program())
		if err != nil {
			t.Fatal(err)
		}
		return stats.BytesMoved
	}
	ep, ft, is := bytesOf("EP"), bytesOf("FT"), bytesOf("IS")
	if ep*100 > ft {
		t.Fatalf("EP moved %v bytes vs FT %v; EP should be communication-light", ep, ft)
	}
	if ep*10 > is {
		t.Fatalf("EP moved %v bytes vs IS %v", ep, is)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("EP", ClassA, 3); err == nil {
		t.Fatal("non-power-of-two procs accepted")
	}
	if _, err := New("BT", ClassA, 8); err == nil {
		t.Fatal("non-square BT accepted")
	}
	if _, err := New("SP", ClassA, 32); err == nil {
		t.Fatal("non-square SP accepted")
	}
	if _, err := New("XX", ClassA, 16); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := New("EP", Class('Z'), 16); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := New("BT", ClassA, 16); err != nil {
		t.Fatalf("square BT rejected: %v", err)
	}
}

func TestClassesScaleProblemSize(t *testing.T) {
	a, err := New("FT", ClassA, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("FT", ClassB, 16)
	if err != nil {
		t.Fatal(err)
	}
	if b.NominalOps() <= a.NominalOps() {
		t.Fatal("class B not larger than class A")
	}
}

func TestLUWavefrontProgresses(t *testing.T) {
	// LU's wavefront at 4 ranks (2x2): ensure it completes and takes
	// longer with more planes.
	nw := testNet(t, 16)
	timeFor := func(iters int) float64 {
		s, err := New("LU", ClassS, 4)
		if err != nil {
			t.Fatal(err)
		}
		s.Iterations = iters
		stats, err := mpi.Run(nw, 4, mpi.Config{}, s.Program())
		if err != nil {
			t.Fatal(err)
		}
		return stats.Elapsed
	}
	t1, t3 := timeFor(1), timeFor(3)
	if t3 < 2*t1 {
		t.Fatalf("LU time does not scale with iterations: %v vs %v", t1, t3)
	}
}

func TestSmallRankCounts(t *testing.T) {
	nw := testNet(t, 16)
	for _, p := range []int{1, 4} {
		for _, name := range []string{"EP", "IS", "FT", "CG", "MG", "LU"} {
			s, err := New(name, ClassS, p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if s.Iterations > 2 {
				s.Iterations = 2
			}
			if _, err := mpi.Run(nw, p, mpi.Config{}, s.Program()); err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
		}
	}
}
