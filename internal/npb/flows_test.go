package npb

import (
	"testing"

	"repro/internal/mpi"
)

// Flow-count accounting: each benchmark's communication pattern implies a
// predictable number of network transfers. These tests pin the message
// structure (not just "it ran"), so pattern regressions are caught.

// flowsFor runs the benchmark and returns completed network flows.
func flowsFor(t *testing.T, name string, p, iters int) int64 {
	t.Helper()
	nw := testNet(t, 16)
	s, err := New(name, ClassS, p)
	if err != nil {
		t.Fatal(err)
	}
	s.Iterations = iters
	stats, err := mpi.Run(nw, p, mpi.Config{}, s.Program())
	if err != nil {
		t.Fatal(err)
	}
	return stats.FlowsCompleted
}

func TestEPFlowCount(t *testing.T) {
	// EP communicates only via its 3 final allreduces. At p=16 (a power
	// of two) recursive doubling has no fold phase: log2(16) = 4 SendRecv
	// rounds, each producing one send (= one flow) per rank, so
	// 3 * 16 * 4 = 192 flows.
	got := flowsFor(t, "EP", 16, 1)
	if want := int64(3 * 16 * 4); got != want {
		t.Fatalf("EP flows = %d, want %d", got, want)
	}
}

func TestAlltoallFlowScaling(t *testing.T) {
	// IS is dominated by its two all-to-alls per iteration: each
	// pairwise exchange is (p-1) steps x 1 send per rank. Verify flows
	// grow linearly with iterations.
	f1 := flowsFor(t, "IS", 16, 1)
	f3 := flowsFor(t, "IS", 16, 3)
	perIter := (f3 - f1) / 2
	if perIter <= 0 {
		t.Fatalf("IS flows not increasing: %d vs %d", f1, f3)
	}
	// Per iteration: allreduce(64) + alltoall(240) + alltoallv(240)
	// sends at p=16 = 16*4 + 16*15 + 16*15 = 544.
	if perIter != 544 {
		t.Fatalf("IS flows per iteration = %d, want 544", perIter)
	}
}

func TestLUFlowCount(t *testing.T) {
	// LU at p=4 (2x2 grid), nz=12 planes (class S): per iteration each
	// sweep sends: rank(0,0): 2 sends (south+east) per plane; (1,0):
	// 1 send; (0,1): 1 send; (1,1): 0 -> 4 sends per plane per sweep,
	// 2 sweeps x 12 planes x 4 = 96; plus allreduce(40B) at p=4:
	// 2 rounds x 1 send x 4 ranks = 8. Total 104 per iteration.
	f1 := flowsFor(t, "LU", 4, 1)
	if f1 != 104 {
		t.Fatalf("LU flows = %d, want 104", f1)
	}
}

func TestMGFlowScaling(t *testing.T) {
	// MG flows per V-cycle are constant across iterations.
	f1 := flowsFor(t, "MG", 8, 1)
	f2 := flowsFor(t, "MG", 8, 2)
	if f2 != 2*f1 {
		t.Fatalf("MG flows not linear in iterations: %d vs %d", f1, f2)
	}
}

func TestCGFlowScaling(t *testing.T) {
	f1 := flowsFor(t, "CG", 16, 1)
	f2 := flowsFor(t, "CG", 16, 2)
	if f2 != 2*f1 {
		t.Fatalf("CG flows not linear in iterations: %d vs %d", f1, f2)
	}
	if f1 == 0 {
		t.Fatal("CG produced no flows")
	}
}

func TestBTSPFlowParity(t *testing.T) {
	// BT and SP share the ADI skeleton: equal flow counts per iteration
	// at the same p (they differ in sizes and flops, not message counts).
	bt := flowsFor(t, "BT", 16, 2)
	sp := flowsFor(t, "SP", 16, 2)
	if bt != sp {
		t.Fatalf("BT flows %d != SP flows %d at equal iterations", bt, sp)
	}
}
