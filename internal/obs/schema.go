package obs

import "repro/internal/buildinfo"

// The stable event schema. Every long-running engine emits Events through
// a Sink; consumers (cmd/orptrace, dashboards, regression tooling) parse
// JSONL files of these records. The contract:
//
//   - One JSON object per line (JSONL).
//   - Every record carries "t" (seconds; wall-clock since process start
//     for engine telemetry, simulated seconds for simulator events),
//     "kind" (one of the Kind* constants below) and optional numeric
//     ("f") and string ("s") field maps.
//   - The first record of a file is KindHeader with f["version"] ==
//     SchemaVersion. Consumers must accept unknown kinds and unknown
//     fields inside known kinds (the schema only grows).
//
// Field keys per kind:
//
//	anneal.sample: iter, temp, current, best, accepted, proposed,
//	               swingAttempts, swingAccepts, counterAttempts,
//	               counterAccepts, swapAttempts, swapAccepts,
//	               movesPerSec, restart
//	anneal.done:   iters, bestTotalPath, bestHASPL, acceptRate, seconds
//	sweep.trial:   fraction, trial, done, total, seconds,
//	               survivingHASPL, stretch, reachableFrac, failedLinks,
//	               failedSwitches
//	sweep.done:    trials, seconds
//	flow.*:        see simnet.FlowTracer (exported via Chrome trace
//	               rather than JSONL; listed here for kind stability)
//	span:          f: id, parent (0/absent = root), start, dur (seconds
//	               relative to the trace epoch) plus numeric attributes;
//	               s: name, trace (the trace/job ID) plus string
//	               attributes. See span.go; trees are rebuilt with
//	               BuildSpanTrees.

// SchemaVersion is bumped whenever an existing field changes meaning
// (never for plain additions). v2: streams may carry causal "span"
// events (span.go) and serve streams the "stream.gap" marker — a v2
// consumer following a job stream must treat stream.gap as a documented
// discontinuity rather than corruption, which is a semantic change to
// the follow contract, hence the bump.
const SchemaVersion = 2

// Event kinds.
const (
	KindHeader       = "obs.header"
	KindAnnealSample = "anneal.sample"
	KindAnnealDone   = "anneal.done"
	KindSweepTrial   = "sweep.trial"
	KindSweepDone    = "sweep.done"
	KindFlowStart    = "flow.start"
	KindFlowReroute  = "flow.reroute"
	KindFlowFinish   = "flow.finish"
	KindFlowFail     = "flow.fail"
	KindSpan         = "span"
)

// Event is one structured telemetry record.
type Event struct {
	T    float64            `json:"t"`
	Kind string             `json:"kind"`
	F    map[string]float64 `json:"f,omitempty"`
	S    map[string]string  `json:"s,omitempty"`
}

// Header returns the file-leading header event. Beyond the schema
// version it stamps the build identity of the emitting process (module,
// Go toolchain, VCS revision when recorded), so an archived JSONL stream
// names the exact build that produced it. Consumers must tolerate the
// string fields being absent: test binaries and bare `go run` builds
// carry no VCS stamps.
func Header() Event {
	bi := buildinfo.Get()
	s := map[string]string{}
	if bi.Module != "" {
		s["module"] = bi.Module
	}
	if bi.GoVersion != "" {
		s["go"] = bi.GoVersion
	}
	if bi.Revision != "" {
		s["revision"] = bi.Revision
		if bi.Dirty {
			s["dirty"] = "true"
		}
	}
	if len(s) == 0 {
		s = nil
	}
	return Event{Kind: KindHeader, F: map[string]float64{"version": SchemaVersion}, S: s}
}
