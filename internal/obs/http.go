package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live metrics endpoint: GET /metrics serves the Prometheus
// text exposition of a Registry, /debug/pprof/* the standard Go
// profiles, and /healthz a liveness probe. It binds its own mux so the
// CLIs can run it beside anything else in the process.
type Server struct {
	// Addr is the bound address (useful with a ":0" listen request).
	Addr string

	// ShutdownTimeout bounds how long Close waits for in-flight requests
	// (a live scrape, a pprof profile capture) before hard-closing their
	// connections. Zero means DefaultShutdownTimeout.
	ShutdownTimeout time.Duration

	ln  net.Listener
	srv *http.Server
}

// DefaultShutdownTimeout is how long Close waits for in-flight requests
// when Server.ShutdownTimeout is unset. Long enough for a /metrics scrape
// or a short pprof capture; short enough that a wedged client cannot hold
// process exit hostage.
const DefaultShutdownTimeout = 5 * time.Second

// Serve starts a metrics server on addr (e.g. "127.0.0.1:0" for an
// OS-assigned port) in a background goroutine and returns immediately.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return serveWith(ln, mux), nil
}

// serveWith wraps ln and handler in a running Server. Split from Serve so
// tests can drive Close against a handler they control.
func serveWith(ln net.Listener, handler http.Handler) *Server {
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s
}

// Close stops the server gracefully: the listener closes immediately (no
// new scrapes), in-flight requests get up to ShutdownTimeout to finish,
// and only stragglers past the deadline have their connections dropped.
// The previous behaviour — http.Server.Close — cut off live /metrics
// scrapes and pprof captures mid-response on every process exit.
func (s *Server) Close() error {
	timeout := s.ShutdownTimeout
	if timeout <= 0 {
		timeout = DefaultShutdownTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Deadline expired with requests still in flight: fall back to the
		// hard close so Close always terminates the server.
		return s.srv.Close()
	}
	return nil
}
