package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a live metrics endpoint: GET /metrics serves the Prometheus
// text exposition of a Registry, /debug/pprof/* the standard Go
// profiles, and /healthz a liveness probe. It binds its own mux so the
// CLIs can run it beside anything else in the process.
type Server struct {
	// Addr is the bound address (useful with a ":0" listen request).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts a metrics server on addr (e.g. "127.0.0.1:0" for an
// OS-assigned port) in a background goroutine and returns immediately.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
