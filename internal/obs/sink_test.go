package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestSinkCloseFlushesAfterWriteError is the no-silent-truncation
// contract: events buffered before a mid-stream encode failure still
// reach the writer on Close, and the sticky error is preserved — not
// swallowed, not allowed to discard the intact prefix.
func TestSinkCloseFlushesAfterWriteError(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for i := 0; i < 3; i++ {
		if err := s.Emit(Event{Kind: "test.ok", F: map[string]float64{"i": float64(i)}}); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	// NaN is unrepresentable in JSON: the encoder fails before writing
	// any bytes, poisoning the sink mid-stream.
	bad := s.Emit(Event{Kind: "test.bad", F: map[string]float64{"x": math.NaN()}})
	if bad == nil {
		t.Fatal("NaN event did not fail")
	}
	if err := s.Emit(Event{Kind: "test.late"}); err == nil {
		t.Fatal("emit after poisoning did not return the sticky error")
	}
	// Flush keeps refusing (the pre-Close behaviour, unchanged)...
	if err := s.Flush(); err == nil {
		t.Fatal("Flush after poisoning did not return the sticky error")
	}
	if buf.Len() != 0 {
		// (bufio default buffer is far larger than four small events, so
		// nothing should have reached the writer yet.)
		t.Fatalf("events reached the writer before Close: %q", buf.String())
	}
	// ...but Close flushes the intact prefix and reports the error.
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "json") {
		t.Fatalf("Close error = %v, want the sticky encode error", err)
	}

	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("flushed stream is not well-formed JSONL: %v", err)
	}
	if len(events) != 4 { // header + 3 good events
		t.Fatalf("got %d events, want 4 (header + 3)", len(events))
	}
	if events[0].Kind != KindHeader {
		t.Fatalf("first event %q, want schema header", events[0].Kind)
	}
	for i, e := range events[1:] {
		if e.Kind != "test.ok" || e.F["i"] != float64(i) {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

// TestSinkCloseCleanStream: Close on a healthy sink is flush + nil.
func TestSinkCloseCleanStream(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	if err := s.Emit(Event{Kind: "test.ok"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close on clean sink: %v", err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil || len(events) != 2 {
		t.Fatalf("events = %d err = %v, want 2 nil", len(events), err)
	}
}
