package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A minimal Prometheus text-exposition parser — the consumer side of
// WritePrometheus, used by cmd/orptop to scrape orpd's /metrics without
// any external dependency. It parses the subset the repo's writer emits
// (plain samples, label sets with quoted values, histogram series) and
// tolerates anything else by skipping it.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string // family name, without labels
	Labels map[string]string
	Value  float64
}

// Label returns a label's value ("" when absent).
func (s PromSample) Label(k string) string { return s.Labels[k] }

// ParsePrometheus parses a text exposition into samples, skipping
// comments, blank lines and anything it cannot parse.
func ParsePrometheus(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, ok := parsePromLine(line)
		if ok {
			out = append(out, s)
		}
	}
	return out, sc.Err()
}

func parsePromLine(line string) (PromSample, bool) {
	name := line
	labels := map[string]string{}
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return PromSample{}, false
		}
		var ok bool
		labels, ok = parsePromLabels(line[i+1 : j])
		if !ok {
			return PromSample{}, false
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return PromSample{}, false
		}
		name, rest = fields[0], fields[1]
	}
	// A timestamp may trail the value; take the first field.
	if f := strings.Fields(rest); len(f) > 0 {
		rest = f[0]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return PromSample{}, false
	}
	return PromSample{Name: name, Labels: labels, Value: v}, true
}

func parsePromLabels(s string) (map[string]string, bool) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, false
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, false
		}
		// Scan the quoted value, honouring backslash escapes.
		i := 1
		var b strings.Builder
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		if i >= len(s) {
			return nil, false
		}
		out[key] = b.String()
		s = strings.TrimSpace(s[i+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return out, true
}

// PromHistogram rebuilds a HistogramSnapshot from the _bucket/_sum/_count
// series of family name whose labels match sel exactly (ignoring "le").
// ok is false when no buckets were found. The snapshot's Quantile method
// then gives the scrape-side percentile estimates orptop renders.
func PromHistogram(samples []PromSample, name string, sel map[string]string) (HistogramSnapshot, bool) {
	type bkt struct {
		le  float64
		cum int64
	}
	var bkts []bkt
	var snap HistogramSnapshot
	match := func(l map[string]string) bool {
		for k, v := range sel {
			if l[k] != v {
				return false
			}
		}
		for k, v := range l {
			if k == "le" {
				continue
			}
			if sel[k] != v {
				return false
			}
		}
		return true
	}
	for _, s := range samples {
		switch s.Name {
		case name + "_bucket":
			if !match(s.Labels) {
				continue
			}
			le, err := parseLe(s.Label("le"))
			if err != nil {
				continue
			}
			bkts = append(bkts, bkt{le, int64(s.Value)})
		case name + "_sum":
			if match(s.Labels) {
				snap.Sum = s.Value
			}
		case name + "_count":
			if match(s.Labels) {
				snap.Count = int64(s.Value)
			}
		}
	}
	if len(bkts) == 0 {
		return HistogramSnapshot{}, false
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	var prev int64
	for _, b := range bkts {
		if b.le == infLe {
			snap.Buckets = append(snap.Buckets, b.cum-prev)
			prev = b.cum
			continue
		}
		snap.Bounds = append(snap.Bounds, b.le)
		snap.Buckets = append(snap.Buckets, b.cum-prev)
		prev = b.cum
	}
	if len(snap.Buckets) == len(snap.Bounds) {
		snap.Buckets = append(snap.Buckets, 0) // writer without +Inf row
	}
	if snap.Count == 0 {
		snap.Count = prev
	}
	return snap, true
}

var infLe = math.Inf(1)

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return infLe, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le %q", s)
	}
	return v, nil
}
