package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// JSONLSink writes Events as one JSON object per line. It is safe for
// concurrent use (a mutex serialises writes — event emission is off the
// per-move hot path by construction: engines sample at intervals).
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing to w, with the schema header
// already emitted.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := NewJSONLSinkContinue(w)
	s.Emit(Header())
	return s
}

// NewJSONLSinkContinue returns a sink writing to w without emitting a
// schema header, for appending to an existing stream that already starts
// with one (a resumed run continuing its event log).
func NewJSONLSinkContinue(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit appends one event. The first write error is sticky and returned
// from every later call and from Flush.
func (s *JSONLSink) Emit(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.enc.Encode(e)
	return s.err
}

// Flush drains the buffer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Close flushes whatever the buffer holds — even after a mid-stream
// write error — and returns the sticky error (or the flush error when
// the stream was clean). Flush refuses to run once the sink is poisoned
// so a partial object is never extended; Close is the terminal call
// where that protection no longer helps: the events buffered *before*
// the failure are intact JSONL lines, and dropping them would turn one
// bad event into silent truncation of the whole tail. A json.Encoder
// failure happens before any bytes reach the buffer (Encode marshals to
// a scratch buffer first), so flushing after it cannot emit a torn line.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.bw.Flush()
	if s.err != nil {
		return s.err
	}
	s.err = ferr
	return ferr
}

// ReadJSONL parses a JSONL event stream, skipping blank lines. Unknown
// kinds are returned as-is (the schema contract: consumers tolerate
// growth).
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}
