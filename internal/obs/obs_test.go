package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer drives every instrument kind from many goroutines
// (run under -race in CI) and checks the totals at quiescence.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "ops")
	g := r.Gauge("hammer_level", "level")
	h := r.Histogram("hammer_seconds", "latency", ExpBuckets(0.001, 10, 5))

	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.005)
			}
		}(w)
	}
	// Concurrent snapshots must uphold the ordering invariant: a count
	// published by Observe never exceeds the bucketed observations.
	for i := 0; i < 100; i++ {
		s := h.Snapshot()
		var bucketed int64
		for _, b := range s.Buckets {
			bucketed += b
		}
		if bucketed < s.Count {
			t.Fatalf("snapshot tore: %d bucketed < %d counted", bucketed, s.Count)
		}
	}
	wg.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	s := h.Snapshot()
	if s.Count != total {
		t.Errorf("histogram count = %d, want %d", s.Count, total)
	}
	var bucketed int64
	for _, b := range s.Buckets {
		bucketed += b
	}
	if bucketed != total {
		t.Errorf("histogram buckets sum to %d, want %d", bucketed, total)
	}
	var perGoroutineSum float64
	for i := 0; i < perG; i++ {
		perGoroutineSum += float64(i%7) * 0.005
	}
	wantSum := float64(goroutines) * perGoroutineSum
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %g, want ~%g", s.Sum, wantSum)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 2, 1} // <=1: {0.5,1}; <=2: {1.5,2}; <=4: {3,4}; overflow: {100}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10..100
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 10}, {0.95, 95, 10}, {0.99, 99, 10},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.0f = %g, want %g ± %g", tc.q*100, got, tc.want, tc.tol)
		}
	}
	if got := (HistogramSnapshot{Bounds: []float64{1}, Buckets: []int64{0, 0}}).Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %g, want 0 (never NaN)", got)
	}
}

// TestQuantileEdgeCases pins the behaviour on the inputs that used to
// produce NaN: empty snapshots, out-of-range q, NaN q. A quantile must
// always be a finite value from the histogram's range.
func TestQuantileEdgeCases(t *testing.T) {
	empty := HistogramSnapshot{Bounds: []float64{1, 2}, Buckets: []int64{0, 0, 0}}
	loaded := HistogramSnapshot{Bounds: []float64{1, 2, 4}, Buckets: []int64{2, 4, 2, 2}, Count: 10, Sum: 20}
	cases := []struct {
		name string
		s    HistogramSnapshot
		q    float64
		want float64
	}{
		{"empty q=0.5", empty, 0.5, 0},
		{"empty q=0", empty, 0, 0},
		{"empty q=1", empty, 1, 0},
		{"empty q=NaN", empty, math.NaN(), 0},
		{"no bounds", HistogramSnapshot{Count: 3}, 0.5, 0},
		{"q=0 is the lower edge", loaded, 0, 0},
		{"q=1 is the upper edge", loaded, 1, 4},
		{"q<0 clamps to 0", loaded, -2, 0},
		{"q>1 clamps to 1", loaded, 7, 4},
		{"NaN q clamps to 0", loaded, math.NaN(), 0},
		{"median interpolates", loaded, 0.5, 1.75},
	}
	for _, tc := range cases {
		got := tc.s.Quantile(tc.q)
		if math.IsNaN(got) {
			t.Errorf("%s: Quantile returned NaN", tc.name)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: Quantile = %g, want %g", tc.name, got, tc.want)
		}
	}
}

// TestPrometheusGolden pins the text exposition format byte for byte: it
// is the contract scrapers depend on.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("anneal_moves_total", "proposed moves").Add(42)
	r.Gauge("anneal_temperature", "current temperature").Set(1.5)
	h := r.Histogram("trial_seconds", "trial duration", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP anneal_moves_total proposed moves
# TYPE anneal_moves_total counter
anneal_moves_total 42
# HELP anneal_temperature current temperature
# TYPE anneal_temperature gauge
anneal_temperature 1.5
# HELP trial_seconds trial duration
# TYPE trial_seconds histogram
trial_seconds_bucket{le="0.1"} 1
trial_seconds_bucket{le="1"} 2
trial_seconds_bucket{le="+Inf"} 3
trial_seconds_sum 3.55
trial_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	events := []TraceEvent{
		MetadataEvent("process_name", 0, 0, "network"),
		{Name: "flow h0→h3", Cat: "flow", Ph: "X", Ts: 1.25, Dur: 100, Pid: 0, Tid: 0,
			Args: map[string]any{"bytes": 4096.0, "links": "h0-s0;s0-s1;s1-h3"}},
		{Name: "reroute", Ph: "i", Ts: 50, Pid: 0, Tid: 0, S: "g"},
		{Name: "link s0-s1", Ph: "C", Ts: 0, Pid: 1, Tid: 0, Args: map[string]any{"bytes": 12.0}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: %d != %d", len(got), len(events))
	}
	for i := range events {
		if got[i].Name != events[i].Name || got[i].Ph != events[i].Ph ||
			got[i].Ts != events[i].Ts || got[i].Dur != events[i].Dur {
			t.Errorf("event %d mismatch: %+v vs %+v", i, got[i], events[i])
		}
	}
	if got[1].Args["bytes"].(float64) != 4096 {
		t.Errorf("args lost: %+v", got[1].Args)
	}

	// The object flavour parses too.
	objGot, err := ReadChromeTrace(strings.NewReader(
		`{"displayTimeUnit":"ms","traceEvents":[{"name":"x","ph":"X","ts":1,"dur":2,"pid":0,"tid":0}]}`))
	if err != nil || len(objGot) != 1 || objGot[0].Name != "x" {
		t.Errorf("object flavour: %v, %+v", err, objGot)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	if err := s.Emit(Event{T: 1.5, Kind: KindAnnealSample,
		F: map[string]float64{"iter": 1000, "best": 42}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Kind != KindHeader || events[0].F["version"] != SchemaVersion {
		t.Fatalf("missing/garbled header: %+v", events)
	}
	if events[1].Kind != KindAnnealSample || events[1].F["best"] != 42 || events[1].T != 1.5 {
		t.Fatalf("event garbled: %+v", events[1])
	}
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("smoke_total", "smoke").Add(7)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, tc := range []struct{ path, want string }{
		{"/metrics", "smoke_total 7"},
		{"/healthz", "ok"},
		{"/debug/pprof/cmdline", ""},
	} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, tc.path))
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", tc.path, resp.StatusCode)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s: body missing %q:\n%s", tc.path, tc.want, body)
		}
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter should panic")
		}
	}()
	r.Gauge("x", "")
}
