package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPrometheusLabeledRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(`orpd_http_requests_total{endpoint="submit",code="2xx"}`, "API requests.").Add(7)
	r.Counter(`orpd_http_requests_total{endpoint="list",code="2xx"}`, "API requests.").Add(3)
	r.Gauge("orpd_queue_depth", "Queue depth.").Set(2)
	h := r.Histogram(`orpd_queue_wait_seconds{priority="0"}`, "Queue wait.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// One TYPE header per family, not per child.
	if n := strings.Count(text, "# TYPE orpd_http_requests_total counter"); n != 1 {
		t.Fatalf("got %d TYPE headers for the counter family, want 1:\n%s", n, text)
	}
	if !strings.Contains(text, `orpd_http_requests_total{endpoint="submit",code="2xx"} 7`) {
		t.Fatalf("labeled sample missing:\n%s", text)
	}
	if !strings.Contains(text, `orpd_queue_wait_seconds_bucket{priority="0",le="+Inf"} 2`) {
		t.Fatalf("labeled histogram +Inf bucket missing:\n%s", text)
	}

	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var submit, depth bool
	for _, s := range samples {
		if s.Name == "orpd_http_requests_total" && s.Label("endpoint") == "submit" {
			submit = true
			if s.Value != 7 {
				t.Fatalf("submit counter parsed as %v", s.Value)
			}
		}
		if s.Name == "orpd_queue_depth" && s.Value == 2 {
			depth = true
		}
	}
	if !submit || !depth {
		t.Fatalf("parser missed samples: submit=%v depth=%v", submit, depth)
	}

	snap, ok := PromHistogram(samples, "orpd_queue_wait_seconds", map[string]string{"priority": "0"})
	if !ok {
		t.Fatal("histogram not reconstructed")
	}
	if snap.Count != 2 {
		t.Fatalf("count %d, want 2", snap.Count)
	}
	if q := snap.Quantile(0.99); q < 1 || q > 10 {
		t.Fatalf("p99 %v outside the observed bucket", q)
	}
}

func TestPromHistogramSelectivity(t *testing.T) {
	text := `
orpd_queue_wait_seconds_bucket{priority="0",le="1"} 5
orpd_queue_wait_seconds_bucket{priority="0",le="+Inf"} 5
orpd_queue_wait_seconds_count{priority="0"} 5
orpd_queue_wait_seconds_bucket{priority="1",le="1"} 9
orpd_queue_wait_seconds_bucket{priority="1",le="+Inf"} 9
orpd_queue_wait_seconds_count{priority="1"} 9
`
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	s0, ok := PromHistogram(samples, "orpd_queue_wait_seconds", map[string]string{"priority": "0"})
	if !ok || s0.Count != 5 {
		t.Fatalf("priority 0: ok=%v count=%d", ok, s0.Count)
	}
	s1, ok := PromHistogram(samples, "orpd_queue_wait_seconds", map[string]string{"priority": "1"})
	if !ok || s1.Count != 9 {
		t.Fatalf("priority 1: ok=%v count=%d", ok, s1.Count)
	}
}

func TestParsePrometheusSkipsGarbage(t *testing.T) {
	text := "# HELP x y\nnot a sample\nok_metric 3\n"
	samples, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Name != "ok_metric" || samples[0].Value != 3 {
		t.Fatalf("got %+v", samples)
	}
}
