package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event JSON (the chrome://tracing and Perfetto legacy
// format). Only the event phases the simulators emit are modelled:
// complete spans ("X"), instants ("i"), counters ("C") and metadata
// ("M"). The writer emits the JSON-array flavour, the most widely
// accepted one; the reader additionally accepts the object flavour
// ({"traceEvents": [...]}).

// TraceEvent is one trace_event record. Ts and Dur are microseconds, per
// the format specification.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: g, p or t
	Args map[string]any `json:"args,omitempty"`
}

// MetadataEvent returns an "M" record naming a process or thread, which
// is how the trace viewer labels its rows.
func MetadataEvent(name string, pid, tid int, value string) TraceEvent {
	return TraceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// WriteChromeTrace writes events as a trace_event JSON array loadable by
// chrome://tracing.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// ReadChromeTrace parses a trace_event file in either the JSON-array or
// the {"traceEvents": [...]} object flavour.
func ReadChromeTrace(r io.Reader) ([]TraceEvent, error) {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("obs: empty trace: %w", err)
	}
	switch d := tok.(type) {
	case json.Delim:
		switch d {
		case '[':
			var out []TraceEvent
			for dec.More() {
				var e TraceEvent
				if err := dec.Decode(&e); err != nil {
					return nil, fmt.Errorf("obs: bad trace event: %w", err)
				}
				out = append(out, e)
			}
			return out, nil
		case '{':
			for {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("obs: trace object without traceEvents: %w", err)
				}
				if d, ok := keyTok.(json.Delim); ok && d == '}' {
					return nil, fmt.Errorf("obs: trace object without traceEvents")
				}
				key, _ := keyTok.(string)
				if key == "traceEvents" {
					var out []TraceEvent
					if err := dec.Decode(&out); err != nil {
						return nil, fmt.Errorf("obs: bad traceEvents array: %w", err)
					}
					return out, nil
				}
				// Skip this key's value.
				var skip json.RawMessage
				if err := dec.Decode(&skip); err != nil {
					return nil, fmt.Errorf("obs: bad trace metadata: %w", err)
				}
			}
		}
	}
	return nil, fmt.Errorf("obs: not a trace_event file (expected [ or {)")
}
