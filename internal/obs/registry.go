// Package obs is the repository's dependency-free telemetry layer: a
// Registry of counters, gauges and fixed-bucket histograms with a
// lock-free hot path (atomics only — instruments may be hammered from the
// SA hot loop or the sweep worker pool without contention), snapshot-on-
// read export, a structured JSONL event sink (schema.go, sink.go), a
// Prometheus-style text exposition (prom.go) with an optional HTTP
// endpoint (http.go), and Chrome trace_event JSON I/O (trace.go).
//
// The long-running engines (opt.Anneal, simnet.Sim, fault.Sweep) publish
// into instruments handed to them by the caller; the CLIs surface them via
// -metrics-addr, -trace-out and -progress. The instrumentation contract —
// metric names and the event schema — is stable: dashboards and
// regression tooling build on it (see schema.go).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus exposition to stay
// meaningful; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that may go up and down. The zero value is
// ready to use; all methods are safe for concurrent use and lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// v <= Bounds[i]; one implicit overflow bucket counts the rest. Observe is
// lock-free; Snapshot is a consistent-enough read for live scraping (the
// per-field loads are individually atomic, and the invariant that bucket
// totals never exceed the published count is preserved by the write
// ordering in Observe — see SnapshotHistogram).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-accumulated
}

// NewHistogram returns a histogram with the given strictly increasing
// upper bounds. It panics on an empty or unsorted bound list.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// multiplied by factor at every step — the usual latency-style layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets wants width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value. Write order (bucket, then sum, then count)
// guarantees a snapshot that reads count first never sees more counted
// observations than bucketed ones.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	h.count.Add(1)
}

// Bounds returns the configured upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Bounds  []float64 // upper bounds; Buckets[len(Bounds)] is overflow
	Buckets []int64
	Count   int64
	Sum     float64
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket. Observations beyond the last bound are
// attributed to the last finite bound. An empty snapshot reports 0, and
// q is clamped to [0, 1] (NaN counts as 0), so text surfaces rendering
// quantiles never print NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	switch {
	case math.IsNaN(q) || q < 0:
		q = 0
	case q > 1:
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Buckets {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		hi := s.Bounds[len(s.Bounds)-1]
		lo := 0.0
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			return hi // overflow bucket: clamp to the last finite bound
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot returns a point-in-time copy. Count is read before the buckets,
// so sum(Buckets) >= Count always holds under concurrent Observes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
		Count:   h.count.Load(),
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry names and owns a set of instruments. Get-or-create lookups take
// a mutex (call them at setup time, keep the returned pointer for the hot
// path); reads for export snapshot each instrument atomically.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
	names      []string // registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
}

func (r *Registry) register(name, help string) {
	if _, dup := r.help[name]; !dup {
		r.names = append(r.names, name)
		r.help[name] = help
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Registering the same name as a different instrument kind panics.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.mustBeFresh(name)
	c := &Counter{}
	r.counters[name] = c
	r.register(name, help)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFresh(name)
	g := &Gauge{}
	r.gauges[name] = g
	r.register(name, help)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.mustBeFresh(name)
	h := NewHistogram(bounds)
	r.histograms[name] = h
	r.register(name, help)
	return h
}

func (r *Registry) mustBeFresh(name string) {
	if _, ok := r.help[name]; ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
}

// Metric is one exported instrument in a Snapshot.
type Metric struct {
	Name string
	Help string
	// Exactly one of the following is meaningful, selected by Kind.
	Kind      MetricKind
	Counter   int64
	Gauge     float64
	Histogram HistogramSnapshot
}

// MetricKind discriminates Metric payloads.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// Snapshot returns every instrument's current value in registration
// order. Individual instruments are read atomically; the set as a whole is
// not a global atomic cut (standard scrape semantics).
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(names))
	for _, name := range names {
		m := Metric{Name: name, Help: help[name]}
		switch {
		case counters[name] != nil:
			m.Kind, m.Counter = KindCounter, counters[name].Value()
		case gauges[name] != nil:
			m.Kind, m.Gauge = KindGauge, gauges[name].Value()
		case hists[name] != nil:
			m.Kind, m.Histogram = KindHistogram, hists[name].Snapshot()
		default:
			continue
		}
		out = append(out, m)
	}
	return out
}
