package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus writes the registry's snapshot in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE comments, plain samples
// for counters and gauges, cumulative _bucket/_sum/_count series for
// histograms (with the mandatory le="+Inf" bucket).
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		var err error
		switch m.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.Name, m.Name, m.Counter)
		case KindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.Name, m.Name, formatFloat(m.Gauge))
		case KindHistogram:
			err = writePromHistogram(w, m.Name, m.Histogram)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += s.Buckets[len(s.Bounds)]
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, formatFloat(s.Sum), name, s.Count)
	return err
}

// formatFloat renders floats the way Prometheus clients do: shortest
// round-trippable representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
