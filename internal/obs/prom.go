package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry's snapshot in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE comments, plain samples
// for counters and gauges, cumulative _bucket/_sum/_count series for
// histograms (with the mandatory le="+Inf" bucket).
//
// Labeled instruments are supported by convention: a metric registered
// under `name{k="v",...}` is exposed as a sample of the family `name`.
// Samples of one family are grouped together (the format requires it)
// in first-registration order, with a single HELP/TYPE header.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	// Group by family (the name up to any '{'), preserving first-seen
	// order so labeled children registered at different times still
	// expose as one contiguous family.
	order := make([]string, 0, len(snap))
	families := make(map[string][]Metric, len(snap))
	for _, m := range snap {
		base := m.Name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if _, ok := families[base]; !ok {
			order = append(order, base)
		}
		families[base] = append(families[base], m)
	}
	for _, base := range order {
		ms := families[base]
		if ms[0].Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, ms[0].Help); err != nil {
				return err
			}
		}
		kind := "counter"
		switch ms[0].Kind {
		case KindGauge:
			kind = "gauge"
		case KindHistogram:
			kind = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
			return err
		}
		for _, m := range ms {
			labels := ""
			if i := strings.IndexByte(m.Name, '{'); i >= 0 {
				labels = strings.TrimSuffix(m.Name[i+1:], "}")
			}
			var err error
			switch m.Kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s %d\n", promName(base, labels), m.Counter)
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s %s\n", promName(base, labels), formatFloat(m.Gauge))
			case KindHistogram:
				err = writePromHistogram(w, base, labels, m.Histogram)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// promName renders a sample name with an optional label set.
func promName(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// promNameExtra renders base{labels,extra} merging an inner label set
// with one extra pair (used for the histogram le label).
func promNameExtra(base, labels, extra string) string {
	if labels == "" {
		return base + "{" + extra + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}

func writePromHistogram(w io.Writer, base, labels string, s HistogramSnapshot) error {
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Buckets[i]
		le := fmt.Sprintf("le=%q", formatFloat(bound))
		if _, err := fmt.Fprintf(w, "%s %d\n", promNameExtra(base+"_bucket", labels, le), cum); err != nil {
			return err
		}
	}
	cum += s.Buckets[len(s.Bounds)]
	_, err := fmt.Fprintf(w, "%s %d\n%s %s\n%s %d\n",
		promNameExtra(base+"_bucket", labels, `le="+Inf"`), cum,
		promName(base+"_sum", labels), formatFloat(s.Sum),
		promName(base+"_count", labels), s.Count)
	return err
}

// formatFloat renders floats the way Prometheus clients do: shortest
// round-trippable representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
