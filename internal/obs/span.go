package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Causal span tracing. A Tracer names one trace (an orpd job, a CLI run)
// and hands out Spans — timed intervals with a parent, a name and
// optional attributes — that are emitted as versioned JSONL events
// (KindSpan) when they end. Consumers (cmd/orptrace, cmd/orptop, the
// serve tests) rebuild the tree from the events alone: every span event
// carries its own ID, its parent's ID and its start/duration, so a trace
// is self-describing and survives interleaving with other event kinds in
// the same stream.
//
// The design constraint is the nil path: engines (opt.Anneal,
// fault.Sweep) accept a parent *Span and open children at stage
// boundaries. When no tracer is installed the parent is nil, and every
// Span method on a nil receiver is a no-op — no allocations, no clock
// reads — so the SA hot path pays nothing (benchmark-guarded next to the
// nil-observer guarantee).

// Tracer mints span IDs and routes finished spans to an emit function.
// Safe for concurrent use: ParallelAnneal restarts and scheduler
// goroutines may end spans concurrently.
type Tracer struct {
	traceID string
	epoch   time.Time
	nextID  atomic.Uint64
	emit    func(Event)
}

// NewTracer returns a tracer for one trace. Emitted span events measure
// time relative to epoch (zero means "now"); emit receives one KindSpan
// event per finished span and must be safe for concurrent use.
func NewTracer(traceID string, epoch time.Time, emit func(Event)) *Tracer {
	if epoch.IsZero() {
		epoch = time.Now()
	}
	return &Tracer{traceID: traceID, epoch: epoch, emit: emit}
}

// TraceID returns the trace's identity (nil-safe).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Root opens a top-level span (parent ID 0). Nil-safe: a nil tracer
// returns a nil span.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		name:   name,
		startT: time.Now(),
	}
}

// Span is one timed interval in a trace. The zero of *Span (nil) is the
// uninstalled tracer: every method no-ops.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	startT time.Time

	mu    sync.Mutex
	fattr map[string]float64
	sattr map[string]string
	ended bool
}

// Child opens a sub-span. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr:     s.tr,
		id:     s.tr.nextID.Add(1),
		parent: s.id,
		name:   name,
		startT: time.Now(),
	}
}

// SetF attaches a numeric attribute. Nil-safe.
func (s *Span) SetF(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.fattr == nil {
		s.fattr = make(map[string]float64, 4)
	}
	s.fattr[key] = v
	s.mu.Unlock()
}

// SetS attaches a string attribute. Nil-safe. The keys "name" and
// "trace" are reserved for the span envelope and silently ignored.
func (s *Span) SetS(key, v string) {
	if s == nil || key == "name" || key == "trace" {
		return
	}
	s.mu.Lock()
	if s.sattr == nil {
		s.sattr = make(map[string]string, 4)
	}
	s.sattr[key] = v
	s.mu.Unlock()
}

// End closes the span and emits its event. Nil-safe and idempotent: the
// second End is a no-op, so defer span.End() composes with early exits
// that end the span with an outcome attribute first.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	f := map[string]float64{
		"id":    float64(s.id),
		"start": s.startT.Sub(s.tr.epoch).Seconds(),
		"dur":   now.Sub(s.startT).Seconds(),
	}
	if s.parent != 0 {
		f["parent"] = float64(s.parent)
	}
	for k, v := range s.fattr {
		f[k] = v
	}
	sa := map[string]string{"name": s.name}
	if s.tr.traceID != "" {
		sa["trace"] = s.tr.traceID
	}
	for k, v := range s.sattr {
		sa[k] = v
	}
	s.mu.Unlock()
	s.tr.emit(Event{
		T:    now.Sub(s.tr.epoch).Seconds(),
		Kind: KindSpan,
		F:    f,
		S:    sa,
	})
}

// Backdate resets the span's start to t. Nil-safe; no-op after End or
// for a zero t. It exists for owners whose work begins before the
// record holding the tracer does (orpd's admission span covers request
// parsing that happens before the job record is created).
func (s *Span) Backdate(t time.Time) {
	if s == nil || t.IsZero() {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.startT = t
	}
	s.mu.Unlock()
}

// Fail ends the span with an error attribute. Nil-safe; a nil err is a
// plain End.
func (s *Span) Fail(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetS("error", err.Error())
	}
	s.End()
}

// Context propagation. The HTTP layer installs the request's span in the
// context; downstream layers open children with StartSpan without knowing
// whether tracing is on — when it is not, SpanFromContext returns nil and
// the nil-span path costs nothing.

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil when none (or a nil
// one) was installed.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's current span and returns the
// derived context plus the child. With no span installed it returns ctx
// unchanged and a nil span, keeping the untraced path allocation-free.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.Child(name)
	return ContextWithSpan(ctx, child), child
}

// SpanNode is one reconstructed span in a trace tree.
type SpanNode struct {
	ID, Parent uint64
	Name       string
	Trace      string
	Start, Dur float64 // seconds relative to the trace epoch
	F          map[string]float64
	S          map[string]string
	Children   []*SpanNode
}

// End returns the span's end time (Start + Dur).
func (n *SpanNode) End() float64 { return n.Start + n.Dur }

// BuildSpanTrees reconstructs span trees from an event stream, ignoring
// non-span kinds. Children are attached by parent ID and sorted by start
// time; spans whose parent never appears in the stream (an evicted or
// truncated prefix) are promoted to roots, so a partial stream still
// yields a forest rather than an error. Roots are returned in start
// order.
func BuildSpanTrees(events []Event) []*SpanNode {
	byID := make(map[uint64]*SpanNode)
	var nodes []*SpanNode
	for _, e := range events {
		if e.Kind != KindSpan {
			continue
		}
		n := &SpanNode{
			ID:     uint64(e.F["id"]),
			Parent: uint64(e.F["parent"]),
			Name:   e.S["name"],
			Trace:  e.S["trace"],
			Start:  e.F["start"],
			Dur:    e.F["dur"],
			F:      make(map[string]float64),
			S:      make(map[string]string),
		}
		for k, v := range e.F {
			switch k {
			case "id", "parent", "start", "dur":
			default:
				n.F[k] = v
			}
		}
		for k, v := range e.S {
			switch k {
			case "name", "trace":
			default:
				n.S[k] = v
			}
		}
		if n.ID == 0 {
			continue // not a well-formed span event
		}
		byID[n.ID] = n
		nodes = append(nodes, n)
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p := byID[n.Parent]; n.Parent != 0 && p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortTree := func(ns []*SpanNode) {
		sort.SliceStable(ns, func(i, j int) bool {
			if ns[i].Start != ns[j].Start {
				return ns[i].Start < ns[j].Start
			}
			return ns[i].ID < ns[j].ID
		})
	}
	var rec func(*SpanNode)
	rec = func(n *SpanNode) {
		sortTree(n.Children)
		for _, c := range n.Children {
			rec(c)
		}
	}
	sortTree(roots)
	for _, r := range roots {
		rec(r)
	}
	return roots
}

// PhaseDurations sums the direct children of a stream's first root span
// by name: the run's wall-time decomposition ("queue.wait" → 1.4s,
// "run" → 12.3s, …), with repeated episodes of the same phase (a
// preempted job's queue.wait/run alternation) accumulated into one
// entry. Returns nil when the stream holds no spans.
func PhaseDurations(events []Event) map[string]float64 {
	roots := BuildSpanTrees(events)
	if len(roots) == 0 {
		return nil
	}
	out := make(map[string]float64, len(roots[0].Children))
	for _, c := range roots[0].Children {
		out[c.Name] += c.Dur
	}
	return out
}

// CoveredFraction reports how much of the root's wall time its direct
// children decompose into, counting overlap between siblings only once
// and clipping children to the root's own interval. 1.0 means the
// children partition the root exactly.
func (n *SpanNode) CoveredFraction() float64 {
	if n.Dur <= 0 {
		return 1
	}
	type iv struct{ lo, hi float64 }
	ivs := make([]iv, 0, len(n.Children))
	for _, c := range n.Children {
		lo, hi := c.Start, c.End()
		if lo < n.Start {
			lo = n.Start
		}
		if hi > n.End() {
			hi = n.End()
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered, cur float64
	curLo := 0.0
	open := false
	for _, v := range ivs {
		if !open {
			curLo, cur, open = v.lo, v.hi, true
			continue
		}
		if v.lo > cur {
			covered += cur - curLo
			curLo, cur = v.lo, v.hi
			continue
		}
		if v.hi > cur {
			cur = v.hi
		}
	}
	if open {
		covered += cur - curLo
	}
	return covered / n.Dur
}

// MaxSiblingOverlap returns the largest pairwise overlap (seconds)
// between the node's direct children — 0 when they are disjoint. The
// serve trace contract promises disjoint top-level phases; tests assert
// this stays ~0.
func (n *SpanNode) MaxSiblingOverlap() float64 {
	type iv struct{ lo, hi float64 }
	ivs := make([]iv, 0, len(n.Children))
	for _, c := range n.Children {
		ivs = append(ivs, iv{c.Start, c.End()})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	worst, hi := 0.0, -1.0
	for _, v := range ivs {
		if hi >= 0 && v.lo < hi {
			if ov := hi - v.lo; ov > worst {
				worst = ov
			}
		}
		if v.hi > hi {
			hi = v.hi
		}
	}
	return worst
}

// SpanTraceEvents converts the span events of a stream into Chrome
// trace_event "X" rows (one thread per trace), so a job's JSONL stream
// drops straight into chrome://tracing or Perfetto.
func SpanTraceEvents(events []Event) []TraceEvent {
	var out []TraceEvent
	tids := make(map[string]int)
	for _, e := range events {
		if e.Kind != KindSpan {
			continue
		}
		trace := e.S["trace"]
		tid, ok := tids[trace]
		if !ok {
			tid = len(tids) + 1
			tids[trace] = tid
			out = append(out, MetadataEvent("thread_name", 1, tid, "trace "+trace))
		}
		args := map[string]any{}
		for k, v := range e.F {
			switch k {
			case "id", "parent", "start", "dur":
			default:
				args[k] = v
			}
		}
		for k, v := range e.S {
			if k != "name" && k != "trace" {
				args[k] = v
			}
		}
		if len(args) == 0 {
			args = nil
		}
		out = append(out, TraceEvent{
			Name: e.S["name"],
			Cat:  "span",
			Ph:   "X",
			Ts:   e.F["start"] * 1e6,
			Dur:  e.F["dur"] * 1e6,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	return out
}

// WriteSpanTree renders a trace forest as an indented ASCII waterfall:
// one line per span with offset, duration and a proportional bar. Width
// is the bar budget in cells (0 means 32).
func WriteSpanTree(w io.Writer, roots []*SpanNode, width int) error {
	if width <= 0 {
		width = 32
	}
	var total float64
	for _, r := range roots {
		if r.End() > total {
			total = r.End()
		}
	}
	var min float64
	if len(roots) > 0 {
		min = roots[0].Start
	}
	span := total - min
	if span <= 0 {
		span = 1
	}
	var rec func(n *SpanNode, depth int) error
	rec = func(n *SpanNode, depth int) error {
		lo := int(float64(width) * (n.Start - min) / span)
		ln := int(float64(width)*n.Dur/span + 0.5)
		if ln < 1 {
			ln = 1
		}
		if lo+ln > width {
			ln = width - lo
			if ln < 1 {
				lo, ln = width-1, 1
			}
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("█", ln) + strings.Repeat(" ", width-lo-ln)
		label := strings.Repeat("  ", depth) + n.Name
		extra := ""
		if v, ok := n.S["outcome"]; ok {
			extra = " [" + v + "]"
		}
		if v, ok := n.S["error"]; ok {
			extra += " !" + v
		}
		if _, err := fmt.Fprintf(w, "  %-34s %s %9.3fms @%9.3fms%s\n",
			truncate(label, 34), bar, n.Dur*1e3, (n.Start-min)*1e3, extra); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := rec(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := rec(r, 0); err != nil {
			return err
		}
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}
