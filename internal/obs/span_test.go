package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func collectTracer(id string) (*Tracer, *[]Event) {
	var mu sync.Mutex
	events := &[]Event{}
	tr := NewTracer(id, time.Now(), func(e Event) {
		mu.Lock()
		*events = append(*events, e)
		mu.Unlock()
	})
	return tr, events
}

func TestSpanTreeRoundTrip(t *testing.T) {
	tr, events := collectTracer("job-1")
	root := tr.Root("job")
	a := root.Child("queue.wait")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Child("run")
	b.SetF("workers", 4)
	b.SetS("outcome", "done")
	c := b.Child("encode")
	c.End()
	time.Sleep(time.Millisecond)
	b.End()
	root.End()

	roots := BuildSpanTrees(*events)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1: %+v", len(roots), roots)
	}
	r := roots[0]
	if r.Name != "job" || r.Trace != "job-1" {
		t.Fatalf("bad root %+v", r)
	}
	if len(r.Children) != 2 {
		t.Fatalf("got %d children, want 2", len(r.Children))
	}
	if r.Children[0].Name != "queue.wait" || r.Children[1].Name != "run" {
		t.Fatalf("bad child order: %s, %s", r.Children[0].Name, r.Children[1].Name)
	}
	run := r.Children[1]
	if run.F["workers"] != 4 || run.S["outcome"] != "done" {
		t.Fatalf("attrs lost: %+v", run)
	}
	if len(run.Children) != 1 || run.Children[0].Name != "encode" {
		t.Fatalf("missing grandchild: %+v", run.Children)
	}
	if r.Dur <= 0 || run.Dur <= 0 || run.Start < r.Start {
		t.Fatalf("bad timing: root %+v run %+v", r, run)
	}
	// The two children are sequential, so coverage is well-defined and
	// positive; the root also brackets both.
	if f := r.CoveredFraction(); f <= 0 || f > 1.0001 {
		t.Fatalf("covered fraction %v out of range", f)
	}
	if ov := r.MaxSiblingOverlap(); ov > 1e-9 {
		t.Fatalf("sequential spans report overlap %v", ov)
	}
}

func TestNilSpanIsFree(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(100, func() {
		c := s.Child("x")
		c.SetF("k", 1)
		c.SetS("s", "v")
		c.End()
		c.Fail(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil span allocated %v per run", allocs)
	}
	var tr *Tracer
	if sp := tr.Root("x"); sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if tr.TraceID() != "" {
		t.Fatal("nil tracer has an ID")
	}
}

func TestStartSpanContext(t *testing.T) {
	ctx := context.Background()
	if c, s := StartSpan(ctx, "x"); s != nil || c != ctx {
		t.Fatal("StartSpan without a tracer must be inert")
	}
	tr, events := collectTracer("t")
	root := tr.Root("root")
	ctx = ContextWithSpan(ctx, root)
	ctx2, child := StartSpan(ctx, "child")
	if child == nil || SpanFromContext(ctx2) != child {
		t.Fatal("child not installed")
	}
	child.End()
	root.End()
	roots := BuildSpanTrees(*events)
	if len(roots) != 1 || len(roots[0].Children) != 1 {
		t.Fatalf("bad tree: %+v", roots)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr, events := collectTracer("t")
	s := tr.Root("x")
	s.SetS("outcome", "preempted")
	s.End()
	s.End()
	s.Fail(nil)
	if len(*events) != 1 {
		t.Fatalf("End emitted %d events, want 1", len(*events))
	}
	if (*events)[0].S["outcome"] != "preempted" {
		t.Fatalf("attr lost: %+v", (*events)[0])
	}
}

func TestOrphanSpansPromoted(t *testing.T) {
	// A truncated stream: the parent's event was evicted.
	events := []Event{
		{Kind: KindSpan, F: map[string]float64{"id": 7, "parent": 3, "start": 0.1, "dur": 0.2}, S: map[string]string{"name": "orphan"}},
	}
	roots := BuildSpanTrees(events)
	if len(roots) != 1 || roots[0].Name != "orphan" {
		t.Fatalf("orphan not promoted: %+v", roots)
	}
}

func TestCoveredFraction(t *testing.T) {
	n := &SpanNode{Start: 0, Dur: 10}
	n.Children = []*SpanNode{
		{Start: 0, Dur: 4},
		{Start: 4, Dur: 5},
	}
	if f := n.CoveredFraction(); f < 0.899 || f > 0.901 {
		t.Fatalf("coverage %v, want 0.9", f)
	}
	// Overlapping children are counted once.
	n.Children = append(n.Children, &SpanNode{Start: 2, Dur: 4})
	if f := n.CoveredFraction(); f < 0.899 || f > 0.901 {
		t.Fatalf("coverage with overlap %v, want 0.9", f)
	}
	if ov := n.MaxSiblingOverlap(); ov < 1.999 || ov > 2.001 {
		t.Fatalf("overlap %v, want 2", ov)
	}
}

func TestSpanChromeExport(t *testing.T) {
	tr, events := collectTracer("j1")
	root := tr.Root("job")
	root.Child("run").End()
	root.End()
	rows := SpanTraceEvents(*events)
	var spans int
	for _, r := range rows {
		if r.Ph == "X" {
			spans++
			if r.Cat != "span" {
				t.Fatalf("bad cat %q", r.Cat)
			}
		}
	}
	if spans != 2 {
		t.Fatalf("got %d X rows, want 2", spans)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round trip lost rows: %d != %d", len(back), len(rows))
	}
}

func TestWriteSpanTree(t *testing.T) {
	roots := []*SpanNode{{
		Name: "job", Start: 0, Dur: 10,
		Children: []*SpanNode{
			{Name: "queue.wait", Start: 0, Dur: 3},
			{Name: "run", Start: 3, Dur: 7, S: map[string]string{"outcome": "done"}},
		},
	}}
	var buf bytes.Buffer
	if err := WriteSpanTree(&buf, roots, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"job", "queue.wait", "run", "[done]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
}
