package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseWaitsForInFlightRequest is the graceful-shutdown regression
// test: a request that is mid-handler when Close is called must run to
// completion and deliver its full response. The old implementation
// (http.Server.Close) dropped the connection instead, so live /metrics
// scrapes died whenever the process exited.
func TestCloseWaitsForInFlightRequest(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var released atomic.Bool
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := serveWith(ln, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "scrape-complete")
	}))

	type reply struct {
		body string
		err  error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr + "/")
		if err != nil {
			got <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- reply{body: string(b), err: err}
	}()

	<-entered
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// The listener must refuse new work while the in-flight request is
	// still being served.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", s.Addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after Close started")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a request was still in flight", err)
	default:
	}

	released.Store(true)
	close(release)
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request failed during Close: %v", r.err)
	}
	if r.body != "scrape-complete" {
		t.Fatalf("in-flight request got truncated body %q", r.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !released.Load() {
		t.Fatal("Close returned before the handler finished")
	}
}

// TestCloseDeadlineDropsStragglers pins the bounded part of the contract:
// a handler that never finishes cannot hold Close hostage past
// ShutdownTimeout.
func TestCloseDeadlineDropsStragglers(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := serveWith(ln, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
	}))
	s.ShutdownTimeout = 50 * time.Millisecond

	go func() {
		resp, err := http.Get("http://" + s.Addr + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	start := time.Now()
	_ = s.Close() // hard-close fallback; error content is unspecified
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("Close took %v despite a %v ShutdownTimeout", waited, s.ShutdownTimeout)
	}
}

// TestServeScrapeThenClose runs the real Serve stack end to end: scrape
// /metrics, close, and require later scrapes to fail.
func TestServeScrapeThenClose(t *testing.T) {
	r := NewRegistry()
	r.Counter("smoke_total", "smoke").Add(3)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := "smoke_total 3"; !strings.Contains(string(body), want) {
		t.Fatalf("scrape missing %q:\n%s", want, body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after Close")
	}
}
