package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

func TestMooreVertexBound(t *testing.T) {
	cases := []struct {
		delta, d int
		want     int64
	}{
		{3, 1, 4},  // K4
		{3, 2, 10}, // Petersen graph order
		{7, 2, 50}, // Hoffman-Singleton order
		{57, 2, 3250},
		{2, 3, 7}, // cycle C7
		{4, 0, 1},
		{0, 5, 1},
	}
	for _, c := range cases {
		if got := MooreVertexBound(c.delta, c.d); got != c.want {
			t.Errorf("MooreVertexBound(%d,%d) = %d, want %d", c.delta, c.d, got, c.want)
		}
	}
}

func TestMooreVertexBoundOverflow(t *testing.T) {
	if got := MooreVertexBound(1000, 1000); got != math.MaxInt64 {
		t.Fatalf("expected overflow sentinel, got %d", got)
	}
}

func TestASPLLowerBoundSmall(t *testing.T) {
	// Complete graph K_n: ASPL exactly 1; bound must equal 1 when K = n-1.
	for n := 3; n <= 10; n++ {
		if got := ASPLLowerBoundRegular(n, n-1); math.Abs(got-1) > 1e-12 {
			t.Errorf("K_%d bound = %v, want 1", n, got)
		}
	}
	// Petersen graph (n=10, k=3) achieves the Moore ASPL bound:
	// 3 at distance 1, 6 at distance 2 => (3+12)/9 = 5/3.
	if got := ASPLLowerBoundRegular(10, 3); math.Abs(got-5.0/3) > 1e-12 {
		t.Errorf("Petersen bound = %v, want 5/3", got)
	}
}

func TestASPLLowerBoundDegenerate(t *testing.T) {
	if got := ASPLLowerBoundRegular(1, 5); got != 0 {
		t.Errorf("single vertex bound = %v", got)
	}
	if got := ASPLLowerBoundRegular(2, 1); got != 1 {
		t.Errorf("K2 bound = %v", got)
	}
	if got := ASPLLowerBoundRegular(5, 1); !math.IsInf(got, 1) {
		t.Errorf("1-regular on 5 vertices should be infeasible, got %v", got)
	}
	if got := ContinuousASPLLowerBound(5, 0.5); !math.IsInf(got, 1) {
		t.Errorf("degree 0.5 should be infeasible, got %v", got)
	}
}

func TestContinuousBoundBelowIntegerBound(t *testing.T) {
	// At integer degrees the two coincide; between them the continuous
	// bound must interpolate monotonically (higher degree => lower ASPL).
	for _, n := range []int{32, 100, 500} {
		prev := math.Inf(1)
		for k := 2.0; k <= 12; k += 0.25 {
			b := ContinuousASPLLowerBound(n, k)
			if b > prev+1e-12 {
				t.Fatalf("bound not monotone at n=%d k=%v: %v > %v", n, k, b, prev)
			}
			prev = b
		}
	}
	if ci, cc := ASPLLowerBoundRegular(100, 4), ContinuousASPLLowerBound(100, 4.0); math.Abs(ci-cc) > 1e-12 {
		t.Fatalf("integer and continuous bounds disagree at integer degree: %v vs %v", ci, cc)
	}
}

func TestDiameterLowerBound(t *testing.T) {
	cases := []struct{ n, r, want int }{
		{16, 6, 3},    // ceil(log_5 15)+1 = 2+1
		{1024, 24, 4}, // ceil(log_23 1023)+1 = 3+1? log_23(1023)=2.21 -> 3+1=4
		{4, 6, 2},     // n-1 <= r-1
		{6, 6, 2},
		{7, 6, 3},
		{1024, 12, 4}, // log_11 1023 = 2.89 -> 3; +1 = 4
		{2, 3, 2},
	}
	for _, c := range cases {
		if got := DiameterLowerBound(c.n, c.r); got != c.want {
			t.Errorf("DiameterLowerBound(%d,%d) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestDiameterLowerBoundIsValid(t *testing.T) {
	// No random connected host-switch graph may beat Theorem 1.
	rnd := rng.New(8)
	for trial := 0; trial < 30; trial++ {
		n := 6 + rnd.Intn(60)
		m := 2 + rnd.Intn(12)
		r := 4 + rnd.Intn(10)
		if !hsgraph.Feasible(n, m, r) {
			continue
		}
		g, err := hsgraph.RandomConnected(n, m, r, rnd)
		if err != nil {
			t.Fatal(err)
		}
		met := g.Evaluate()
		if !met.Connected {
			continue
		}
		if lb := DiameterLowerBound(n, r); met.Diameter < lb {
			t.Fatalf("graph (n=%d,m=%d,r=%d) has diameter %d below bound %d", n, m, r, met.Diameter, lb)
		}
	}
}

func TestHASPLLowerBoundExactCase(t *testing.T) {
	// n = (r-1)^(D-1)+1: bound is exactly D.
	// r=4, D=3: n = 9+1 = 10.
	if got := HASPLLowerBound(10, 4); got != 3 {
		t.Fatalf("HASPLLowerBound(10,4) = %v, want 3", got)
	}
	// r=6, D=2: n = 5+1 = 6.
	if got := HASPLLowerBound(6, 6); got != 2 {
		t.Fatalf("HASPLLowerBound(6,6) = %v, want 2", got)
	}
}

func TestHASPLLowerBoundSmallN(t *testing.T) {
	// n <= r: a single switch achieves h-ASPL 2 and the bound must be 2.
	for _, c := range []struct{ n, r int }{{4, 6}, {5, 8}, {3, 3}} {
		got := HASPLLowerBound(c.n, c.r)
		if got > 2+1e-12 {
			t.Errorf("HASPLLowerBound(%d,%d) = %v > 2 but a single switch achieves 2", c.n, c.r, got)
		}
	}
	// And the single-switch construction must meet it.
	g := hsgraph.New(4, 1, 6)
	for h := 0; h < 4; h++ {
		if err := g.AttachHost(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	if met := g.Evaluate(); met.HASPL < HASPLLowerBound(4, 6)-1e-12 {
		t.Fatalf("construction beats bound: %v < %v", met.HASPL, HASPLLowerBound(4, 6))
	}
}

func TestHASPLLowerBoundIsValid(t *testing.T) {
	rnd := rng.New(19)
	for trial := 0; trial < 40; trial++ {
		n := 6 + rnd.Intn(100)
		m := 2 + rnd.Intn(16)
		r := 4 + rnd.Intn(12)
		if !hsgraph.Feasible(n, m, r) {
			continue
		}
		g, err := hsgraph.RandomConnected(n, m, r, rnd)
		if err != nil {
			t.Fatal(err)
		}
		met := g.Evaluate()
		if !met.Connected {
			continue
		}
		if lb := HASPLLowerBound(n, r); met.HASPL < lb-1e-9 {
			t.Fatalf("graph (n=%d,m=%d,r=%d) h-ASPL %v below Theorem 2 bound %v", n, m, r, met.HASPL, lb)
		}
	}
}

func TestHASPLBoundAtMostDiameterBound(t *testing.T) {
	check := func(nRaw, rRaw uint8) bool {
		n := 3 + int(nRaw)%500
		r := 3 + int(rRaw)%30
		return HASPLLowerBound(n, r) <= float64(DiameterLowerBound(n, r))+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularHASPLBound(t *testing.T) {
	// Valid on real regular host-switch graphs.
	rnd := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		m := 2 * (3 + rnd.Intn(5))
		k := 3
		n := m * 3
		r := n/m + k
		g, err := hsgraph.RandomRegular(n, m, r, k, rnd)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := RegularHASPLBound(n, m, r)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Evaluate().HASPL; got < lb-1e-9 {
			t.Fatalf("regular graph beats Eq.2 bound: %v < %v (n=%d m=%d r=%d)", got, lb, n, m, r)
		}
	}
	if _, err := RegularHASPLBound(10, 3, 6); err == nil {
		t.Fatal("m not dividing n accepted")
	}
	if lb, err := RegularHASPLBound(12, 1, 12); err != nil || lb != 2 {
		t.Fatalf("single switch bound = %v, %v", lb, err)
	}
	if lb, _ := RegularHASPLBound(100, 1, 12); !math.IsInf(lb, 1) {
		t.Fatalf("overfull single switch should be infeasible, got %v", lb)
	}
}

func TestContinuousMatchesIntegerOnDivisors(t *testing.T) {
	n, r := 1024, 24
	for _, m := range []int{64, 128, 256, 512} {
		ci := ContinuousMooreHASPL(n, m, r)
		ii, err := RegularHASPLBound(n, m, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ci-ii) > 1e-9 {
			t.Fatalf("m=%d: continuous %v != integer %v", m, ci, ii)
		}
	}
}

func TestOptimalSwitchCountMatchesPaper(t *testing.T) {
	// Section 6: for n=1024 the paper's proposed topologies use m=194 at
	// r=15 and m=183 at r=16, chosen as the continuous Moore bound
	// minimiser. Allow +-2 for tie-breaking details.
	cases := []struct{ n, r, want int }{
		{1024, 15, 194},
		{1024, 16, 183},
	}
	for _, c := range cases {
		got, bound := OptimalSwitchCount(c.n, c.r, 0)
		if got < c.want-2 || got > c.want+2 {
			t.Errorf("OptimalSwitchCount(%d,%d) = %d (bound %v), paper uses %d", c.n, c.r, got, bound, c.want)
		}
	}
}

func TestOptimalSwitchCountSmallN(t *testing.T) {
	// n <= r: one switch is optimal and achieves bound 2.
	m, b := OptimalSwitchCount(8, 12, 0)
	if m != 1 || b != 2 {
		t.Fatalf("OptimalSwitchCount(8,12) = %d, %v; want 1, 2", m, b)
	}
}

func TestOptimalSwitchCountBoundIsMinimum(t *testing.T) {
	n, r := 512, 12
	mOpt, bOpt := OptimalSwitchCount(n, r, 0)
	for m := 1; m <= n; m++ {
		if b := ContinuousMooreHASPL(n, m, r); b < bOpt-1e-12 && feasible(n, m, r) {
			t.Fatalf("m=%d has bound %v below reported optimum %v at m=%d", m, b, bOpt, mOpt)
		}
	}
}

func TestCliqueFeasible(t *testing.T) {
	// Paper Section 5.3: for n=128, r=24 a clique is possible at m=8
	// (m <= n <= m(r-m+1): 8*17 = 136 >= 128).
	if !CliqueFeasible(128, 8, 24) {
		t.Fatal("paper's clique case rejected")
	}
	if CliqueFeasible(1024, 8, 24) {
		t.Fatal("oversized clique accepted")
	}
	if CliqueFeasible(10, 5, 3) {
		t.Fatal("clique with r < m-1 accepted")
	}
	if m := MinCliqueSwitches(128, 24); m < 2 || !CliqueFeasible(128, m, 24) || CliqueFeasible(128, m-1, 24) {
		t.Fatalf("MinCliqueSwitches(128,24) = %d not minimal feasible", m)
	}
	if m := MinCliqueSwitches(1<<20, 24); m != 0 {
		t.Fatalf("MinCliqueSwitches for huge n = %d, want 0", m)
	}
}

func TestTheorem2TightnessNearClique(t *testing.T) {
	// For n=6, r=6 the bound is exactly 2 and a single switch achieves it:
	// Theorem 2 is tight there. For n=16, r=6 verify the formula value:
	// D- = ceil(log_5 15)+1 = 3, alpha = 5 - ceil((15-5)/4) = 5-3 = 2,
	// bound = 3 - 2/15.
	want := 3 - 2.0/15
	if got := HASPLLowerBound(16, 6); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HASPLLowerBound(16,6) = %v, want %v", got, want)
	}
}

func TestOptimalSwitchCountMaxM(t *testing.T) {
	// Restricting the search range changes the answer when the true
	// optimum lies beyond it.
	full, _ := OptimalSwitchCount(512, 12, 0)
	capped, _ := OptimalSwitchCount(512, 12, full/2)
	if capped > full/2 {
		t.Fatalf("maxM ignored: got %d with cap %d", capped, full/2)
	}
}

func TestContinuousASPLLowerBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on n=0")
		}
	}()
	ContinuousASPLLowerBound(0, 3)
}

func TestDiameterLowerBoundPanicsOnTinyRadix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on r=2")
		}
	}()
	DiameterLowerBound(10, 2)
}

func TestHASPLLowerBoundTrivialN(t *testing.T) {
	if got := HASPLLowerBound(1, 6); got != 0 {
		t.Fatalf("n=1 bound = %v, want 0", got)
	}
	if got := DiameterLowerBound(1, 6); got != 0 {
		t.Fatalf("n=1 diameter bound = %v, want 0", got)
	}
}

func TestRegularHASPLBoundInfeasibleDegree(t *testing.T) {
	// k = r - n/m < 1: disconnected configuration.
	if lb, err := RegularHASPLBound(64, 8, 8); err != nil || !math.IsInf(lb, 1) {
		t.Fatalf("expected +Inf for k=0, got %v (%v)", lb, err)
	}
}

func TestContinuousMooreHASPLEdges(t *testing.T) {
	if b := ContinuousMooreHASPL(64, 0, 8); !math.IsInf(b, 1) {
		t.Fatalf("m=0 should be infeasible, got %v", b)
	}
	if b := ContinuousMooreHASPL(4, 1, 8); b != 2 {
		t.Fatalf("single-switch bound = %v, want 2", b)
	}
	if b := ContinuousMooreHASPL(100, 1, 8); !math.IsInf(b, 1) {
		t.Fatalf("overfull single switch should be infeasible, got %v", b)
	}
}
