// Package bounds implements the analytic results of the ORP paper:
// the Moore bound, the ASPL lower bound it induces on regular graphs,
// Theorem 1 (diameter lower bound of host-switch graphs), Theorem 2
// (h-ASPL lower bound), Equation 2 (regular host-switch graph bound), the
// paper's continuous Moore bound with real-valued degree, and the
// m_opt predictor (Section 5.3): the optimal switch count is the minimiser
// of the continuous Moore bound.
package bounds

import (
	"fmt"
	"math"
)

// MooreVertexBound returns the Moore bound on the number of vertices of an
// undirected graph with maximum degree delta and diameter d:
// 1 + delta * sum_{i=0}^{d-1} (delta-1)^i. Returns math.MaxInt64 on
// overflow (the bound is then vacuous for any practical order).
func MooreVertexBound(delta, d int) int64 {
	if delta < 1 || d < 0 {
		return 1
	}
	if d == 0 {
		return 1
	}
	total := int64(1)
	layer := int64(delta)
	for i := 0; i < d; i++ {
		total += layer
		if total < 0 {
			return math.MaxInt64
		}
		if layer > math.MaxInt64/int64(delta) {
			return math.MaxInt64
		}
		layer *= int64(delta - 1)
	}
	return total
}

// ASPLLowerBoundRegular returns the Moore-style lower bound on the average
// shortest path length of a connected K-regular graph with N vertices:
// fill distance shells greedily with at most K*(K-1)^(j-1) vertices at
// distance j. It panics on N < 1; it returns +Inf when K < 2 and N is too
// large to connect (a 1-regular graph has at most 2 vertices).
func ASPLLowerBoundRegular(n, k int) float64 {
	return ContinuousASPLLowerBound(n, float64(k))
}

// ContinuousASPLLowerBound is ASPLLowerBoundRegular with a real-valued
// degree, the key ingredient of the paper's continuous Moore bound. Shell
// capacities are K*(K-1)^(j-1) with real K.
func ContinuousASPLLowerBound(n int, k float64) float64 {
	if n < 1 {
		panic(fmt.Sprintf("bounds: non-positive order %d", n))
	}
	if n <= 1 {
		return 0
	}
	if k <= 0 {
		return math.Inf(1)
	}
	if k <= 1 {
		// A graph with max degree 1 connects at most 2 vertices.
		if n == 2 {
			return 1
		}
		return math.Inf(1)
	}
	remaining := float64(n - 1)
	var total float64
	cap_ := k
	for j := 1; remaining > 0; j++ {
		take := math.Min(cap_, remaining)
		total += float64(j) * take
		remaining -= take
		cap_ *= k - 1
		if j > n { // safety: cannot need more levels than vertices
			return math.Inf(1)
		}
	}
	return total / float64(n-1)
}

// DiameterLowerBound implements Theorem 1: for any host-switch graph with
// order n and radix r, the host-to-host diameter is at least
// ceil(log_{r-1}(n-1)) + 1. Requires n >= 2 and r >= 3.
func DiameterLowerBound(n, r int) int {
	if n < 2 {
		return 0
	}
	if r < 3 {
		panic(fmt.Sprintf("bounds: radix %d < 3", r))
	}
	// e = ceil(log_{r-1}(n-1)) via repeated multiplication (avoids floating
	// point edge cases); the bound is e + 1, never below the trivial
	// host-to-host minimum of 2.
	e := 0
	reach := int64(1) // (r-1)^e
	for reach < int64(n-1) {
		e++
		if reach > math.MaxInt64/int64(r-1) {
			break
		}
		reach *= int64(r - 1)
	}
	if e+1 < 2 {
		return 2
	}
	return e + 1
}

// HASPLLowerBound implements Theorem 2: the lower bound on the h-ASPL of
// any host-switch graph with order n and radix r.
func HASPLLowerBound(n, r int) float64 {
	if n < 2 {
		return 0
	}
	if r < 3 {
		panic(fmt.Sprintf("bounds: radix %d < 3", r))
	}
	dMinus := DiameterLowerBound(n, r)
	// (r-1)^(dMinus-1), guarding overflow (then n != pow+1 surely).
	powD1 := powInt64(int64(r-1), dMinus-1)
	if powD1 > 0 && int64(n) == powD1+1 {
		return float64(dMinus)
	}
	powD2 := powInt64(int64(r-1), dMinus-2)
	numer := int64(n-1) - powD2
	// alpha = (r-1)^(D-2) - ceil((n-1-(r-1)^(D-2)) / (r-2))
	alpha := powD2 - ceilDiv(numer, int64(r-2))
	if alpha < 0 {
		alpha = 0
	}
	return float64(dMinus) - float64(alpha)/float64(n-1)
}

func powInt64(base int64, exp int) int64 {
	if exp < 0 {
		return 0
	}
	out := int64(1)
	for i := 0; i < exp; i++ {
		if out > math.MaxInt64/base {
			return math.MaxInt64
		}
		out *= base
	}
	return out
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("bounds: non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// RegularHASPLBound implements Equation 2 for a k-regular host-switch
// graph: with m switches each carrying exactly n/m hosts and switch degree
// K = r - n/m, the h-ASPL is at least
// M(m, r - n/m) * (mn - n) / (mn - m) + 2 where M is the ASPL Moore bound.
// Requires m | n. Returns +Inf when the configuration cannot connect.
func RegularHASPLBound(n, m, r int) (float64, error) {
	if m < 1 || n%m != 0 {
		return 0, fmt.Errorf("bounds: Equation 2 requires m | n (n=%d, m=%d)", n, m)
	}
	if m == 1 {
		if n > r {
			return math.Inf(1), nil
		}
		return 2, nil
	}
	k := r - n/m
	if k < 1 {
		return math.Inf(1), nil
	}
	aspl := ASPLLowerBoundRegular(m, k)
	return scaleEq1(aspl, n, m), nil
}

// ContinuousMooreHASPL is the paper's continuous Moore bound: Equation 2
// with a real-valued switch degree K = r - n/m, defined for every integer
// m (not only divisors of n). Returns +Inf for infeasible m.
func ContinuousMooreHASPL(n, m, r int) float64 {
	if m < 1 {
		return math.Inf(1)
	}
	if m == 1 {
		if n > r {
			return math.Inf(1)
		}
		return 2
	}
	k := float64(r) - float64(n)/float64(m)
	if k <= 1 {
		return math.Inf(1)
	}
	aspl := ContinuousASPLLowerBound(m, k)
	return scaleEq1(aspl, n, m)
}

// scaleEq1 converts a switch-graph ASPL into an h-ASPL via Equation 1.
func scaleEq1(switchASPL float64, n, m int) float64 {
	nm := float64(n) * float64(m)
	return switchASPL*(nm-float64(n))/(nm-float64(m)) + 2
}

// OptimalSwitchCount returns m_opt, the switch count minimising the
// continuous Moore bound for order n and radix r (Section 5.3's predictor
// of the best number of switches), together with the bound's value there.
// Only feasible m (those admitting a connected host-switch graph) are
// considered. The search range is [1, maxM]; pass maxM <= 0 for the
// default of n.
func OptimalSwitchCount(n, r int, maxM int) (mOpt int, bound float64) {
	if maxM <= 0 {
		maxM = n
	}
	bound = math.Inf(1)
	mOpt = 1
	for m := 1; m <= maxM; m++ {
		if !feasible(n, m, r) {
			continue
		}
		b := ContinuousMooreHASPL(n, m, r)
		if b < bound {
			bound = b
			mOpt = m
		}
	}
	return mOpt, bound
}

// feasible mirrors hsgraph.Feasible; duplicated to keep bounds free of a
// dependency on the graph representation.
func feasible(n, m, r int) bool {
	if n < 1 || m < 1 || r < 1 {
		return false
	}
	if m == 1 {
		return n <= r
	}
	return n <= m*r-2*(m-1)
}

// CliqueFeasible reports whether the switches can form an m-clique with
// all n hosts attached: the Section 3.2 condition n <= m(r-m+1) together
// with each switch having m-1 switch ports available (m-1 < r).
func CliqueFeasible(n, m, r int) bool {
	if m < 1 || r < m-1 {
		return false
	}
	return n <= m*(r-m+1)
}

// MinCliqueSwitches returns the smallest m such that an m-clique of
// radix-r switches can host n hosts, or 0 if none exists (Appendix,
// Lemma 3: the optimal clique host-switch graph uses the minimum m).
func MinCliqueSwitches(n, r int) int {
	for m := 1; m <= r+1; m++ {
		if CliqueFeasible(n, m, r) {
			return m
		}
	}
	return 0
}
