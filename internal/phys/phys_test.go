package phys

import (
	"math"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/topo"
)

func TestEvaluateSingleCabinet(t *testing.T) {
	// One switch, 4 hosts: 4 electrical host cables, no switch links.
	g := hsgraph.New(4, 1, 8)
	for h := 0; h < 4; h++ {
		if err := g.AttachHost(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	p := NewParams()
	rep := Evaluate(g, p)
	if rep.Cabinets != 1 || rep.NumElec != 4 || rep.NumOpt != 0 {
		t.Fatalf("report %+v", rep)
	}
	wantPower := p.SwitchBasePowerW + 4*p.PortPowerW + 4*p.ElecCablePowerW
	if math.Abs(rep.TotalPowerW()-wantPower) > 1e-9 {
		t.Fatalf("power %v, want %v", rep.TotalPowerW(), wantPower)
	}
	wantCost := p.SwitchBaseCost + 4*p.PortCost + 4*(p.ElecCableBase+p.ElecCablePerM*p.HostCableM)
	if math.Abs(rep.TotalCost()-wantCost) > 1e-9 {
		t.Fatalf("cost %v, want %v", rep.TotalCost(), wantCost)
	}
}

func TestCableClassification(t *testing.T) {
	// Two switches in adjacent cabinets: 0.6 m apart -> electrical.
	g, err := hsgraph.Ring(2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams()
	rep := Evaluate(g, p)
	// 2 host cables + 1 switch cable, all electrical.
	if rep.NumElec != 3 || rep.NumOpt != 0 {
		t.Fatalf("report %+v", rep)
	}
	// A long row of cabinets: switch 0 to switch 9 in a 4x3 grid is more
	// than 1 m away -> optical.
	g2, err := hsgraph.Path(10, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := Evaluate(g2, p)
	if rep2.NumOpt == 0 {
		t.Fatalf("expected some optical cables in a 10-cabinet layout: %+v", rep2)
	}
	if rep2.Cabinets != 10 || rep2.GridCols != 4 {
		t.Fatalf("grid %+v, want 10 cabinets in 4 columns", rep2)
	}
}

func TestManhattanDistance(t *testing.T) {
	// Grid of 4 cabinets (2x2): distance between cabinet 0 and 3 is
	// width + depth.
	g := hsgraph.New(2, 4, 4)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 3); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 3}, {0, 1}, {1, 3}} {
		if err := g.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := NewParams()
	rep := Evaluate(g, p)
	// Cable lengths: host x2 (0.5 each), 0-3 (0.6+2.1), 0-1 (0.6), 1-3 (2.1).
	want := 0.5 + 0.5 + (0.6 + 2.1) + 0.6 + 2.1
	if math.Abs(rep.TotalCableM-want) > 1e-9 {
		t.Fatalf("cable length %v, want %v", rep.TotalCableM, want)
	}
}

func TestSwitchesPerCabinet(t *testing.T) {
	g, err := hsgraph.Ring(8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams()
	p.SwitchesPerCabinet = 2
	rep := Evaluate(g, p)
	if rep.Cabinets != 2 {
		t.Fatalf("cabinets = %d, want 2", rep.Cabinets)
	}
	// Links within a shared cabinet are intra-cabinet length.
	p2 := NewParams()
	p2.SwitchesPerCabinet = 4
	rep2 := Evaluate(g, p2)
	if rep2.Cabinets != 1 || rep2.NumOpt != 0 {
		t.Fatalf("single-cabinet layout got %+v", rep2)
	}
}

func TestPaperScaleComparisons(t *testing.T) {
	// The 16-ary fat-tree (m=320) must cost more and burn more power than
	// the 5-D torus (m=243) at n=1024 — the paper's Figs. 9c/11c ordering.
	ft, err := topo.FatTree(16)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := ft.Build(1024)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := topo.Torus(5, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := ts.Build(1024)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams()
	rf, rt := Evaluate(gf, p), Evaluate(gt, p)
	if rf.TotalPowerW() <= rt.TotalPowerW() {
		t.Fatalf("fat-tree power %v should exceed torus %v", rf.TotalPowerW(), rt.TotalPowerW())
	}
	if rf.TotalCost() <= rt.TotalCost() {
		t.Fatalf("fat-tree cost %v should exceed torus %v", rf.TotalCost(), rt.TotalCost())
	}
	// Switch cost dominates cable cost for both (paper: "the switch cost
	// is dominant").
	for _, rep := range []Report{rf, rt} {
		if rep.SwitchCost < rep.CableCost {
			t.Fatalf("switch cost should dominate: %+v", rep)
		}
	}
}

func TestReportString(t *testing.T) {
	g, err := hsgraph.Ring(4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := Evaluate(g, NewParams()).String(); s == "" {
		t.Fatal("empty string")
	}
}
