package phys

import (
	"math"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// Layout maps switches to cabinets. The default layout used by Evaluate
// assigns switches to cabinets in index order; OptimizeLayout searches
// for an assignment with lower total cable cost, following the
// layout-conscious placement idea of the paper's reference [13]
// (Koibuchi et al., HPCA 2013).
type Layout struct {
	CabinetOf []int32 // switch -> cabinet
	Cabinets  int
	Cols      int
}

// DefaultLayout packs switches into cabinets in index order.
func DefaultLayout(g *hsgraph.Graph, p Params) *Layout {
	m := g.Switches()
	perCab := p.SwitchesPerCabinet
	if perCab < 1 {
		perCab = 1
	}
	cabinets := (m + perCab - 1) / perCab
	cols := int(math.Ceil(math.Sqrt(float64(cabinets))))
	if cols < 1 {
		cols = 1
	}
	l := &Layout{CabinetOf: make([]int32, m), Cabinets: cabinets, Cols: cols}
	for s := 0; s < m; s++ {
		l.CabinetOf[s] = int32(s / perCab)
	}
	return l
}

// cabinetDistance returns the Manhattan distance in metres between two
// cabinets of this layout.
func (l *Layout) cabinetDistance(p Params, a, b int32) float64 {
	if a == b {
		return p.HostCableM
	}
	xa, ya := float64(int(a)%l.Cols)*p.CabinetWidthM, float64(int(a)/l.Cols)*p.CabinetDepthM
	xb, yb := float64(int(b)%l.Cols)*p.CabinetWidthM, float64(int(b)/l.Cols)*p.CabinetDepthM
	return math.Abs(xa-xb) + math.Abs(ya-yb)
}

// cableCost prices one cable of the given length.
func cableCost(p Params, lenM float64) float64 {
	if lenM <= p.ElectricalMax {
		return p.ElecCableBase + p.ElecCablePerM*lenM
	}
	return p.OptCableBase + p.OptCablePerM*lenM
}

// EvaluateLayout prices a deployment under an explicit layout.
func EvaluateLayout(g *hsgraph.Graph, p Params, l *Layout) Report {
	rep := Report{Cabinets: l.Cabinets, GridCols: l.Cols, GridRows: (l.Cabinets + l.Cols - 1) / l.Cols}
	addCable := func(lenM float64) {
		rep.TotalCableM += lenM
		if lenM <= p.ElectricalMax {
			rep.NumElec++
			rep.CablePowerW += p.ElecCablePowerW
			rep.CableCost += p.ElecCableBase + p.ElecCablePerM*lenM
		} else {
			rep.NumOpt++
			rep.CablePowerW += p.OptCablePowerW
			rep.CableCost += p.OptCableBase + p.OptCablePerM*lenM
		}
	}
	for h := 0; h < g.Order(); h++ {
		if g.SwitchOf(h) >= 0 {
			addCable(p.HostCableM)
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		addCable(l.cabinetDistance(p, l.CabinetOf[a], l.CabinetOf[b]))
	}
	for s := 0; s < g.Switches(); s++ {
		ports := float64(g.Degree(s))
		rep.SwitchPowerW += p.SwitchBasePowerW + p.PortPowerW*ports
		rep.SwitchCost += p.SwitchBaseCost + p.PortCost*ports
	}
	return rep
}

// OptimizeLayout runs a randomized local search (pairwise swaps of
// switch-cabinet assignments, accepting non-worsening moves) minimising
// total cable cost. It returns the improved layout; DefaultLayout is the
// starting point.
func OptimizeLayout(g *hsgraph.Graph, p Params, iterations int, seed uint64) *Layout {
	l := DefaultLayout(g, p)
	m := g.Switches()
	if m < 2 || iterations <= 0 {
		return l
	}
	rnd := rng.New(seed)
	// Incremental objective: the cable cost of all switch-switch edges.
	edgeCost := func(s int32) float64 {
		var sum float64
		for _, u := range g.Neighbors(int(s)) {
			sum += cableCost(p, l.cabinetDistance(p, l.CabinetOf[s], l.CabinetOf[u]))
		}
		return sum
	}
	for it := 0; it < iterations; it++ {
		a := int32(rnd.Intn(m))
		b := int32(rnd.Intn(m))
		if a == b || l.CabinetOf[a] == l.CabinetOf[b] {
			continue
		}
		before := edgeCost(a) + edgeCost(b) - pairAdjust(g, p, l, a, b)
		l.CabinetOf[a], l.CabinetOf[b] = l.CabinetOf[b], l.CabinetOf[a]
		after := edgeCost(a) + edgeCost(b) - pairAdjust(g, p, l, a, b)
		if after > before {
			l.CabinetOf[a], l.CabinetOf[b] = l.CabinetOf[b], l.CabinetOf[a]
		}
	}
	return l
}

// pairAdjust compensates for the a-b edge being counted twice when a and
// b are adjacent.
func pairAdjust(g *hsgraph.Graph, p Params, l *Layout, a, b int32) float64 {
	if !g.HasEdge(int(a), int(b)) {
		return 0
	}
	return cableCost(p, l.cabinetDistance(p, l.CabinetOf[a], l.CabinetOf[b]))
}
