package phys

import (
	"math"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
	"repro/internal/topo"
)

func TestDefaultLayoutMatchesEvaluate(t *testing.T) {
	sp, err := topo.Dragonfly(4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sp.Build(60)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams()
	a := Evaluate(g, p)
	b := EvaluateLayout(g, p, DefaultLayout(g, p))
	if math.Abs(a.TotalCost()-b.TotalCost()) > 1e-9 ||
		math.Abs(a.TotalCableM-b.TotalCableM) > 1e-9 ||
		a.NumElec != b.NumElec || a.NumOpt != b.NumOpt {
		t.Fatalf("default layout diverges from Evaluate: %+v vs %+v", a, b)
	}
}

func TestOptimizeLayoutImproves(t *testing.T) {
	// A ring of switches laid out in index order on a square grid has
	// several long wrap cables; local search should shorten the total.
	g, err := hsgraph.Ring(32, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams()
	before := EvaluateLayout(g, p, DefaultLayout(g, p))
	l := OptimizeLayout(g, p, 5000, 1)
	after := EvaluateLayout(g, p, l)
	if after.CableCost > before.CableCost {
		t.Fatalf("layout optimisation worsened cable cost: %v -> %v", before.CableCost, after.CableCost)
	}
	// Switch cost is layout-invariant.
	if after.SwitchCost != before.SwitchCost {
		t.Fatal("layout changed switch cost")
	}
}

func TestOptimizeLayoutValidAssignment(t *testing.T) {
	g, err := hsgraph.RandomConnected(64, 16, 8, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams()
	p.SwitchesPerCabinet = 2
	l := OptimizeLayout(g, p, 2000, 5)
	// Every cabinet must hold at most SwitchesPerCabinet switches (swaps
	// preserve the multiset of cabinet slots).
	count := map[int32]int{}
	for _, c := range l.CabinetOf {
		count[c]++
		if int(c) < 0 || int(c) >= l.Cabinets {
			t.Fatalf("cabinet %d out of range", c)
		}
	}
	for cab, n := range count {
		if n > p.SwitchesPerCabinet {
			t.Fatalf("cabinet %d holds %d switches", cab, n)
		}
	}
}

func TestOptimizeLayoutDeterministic(t *testing.T) {
	g, err := hsgraph.RandomConnected(40, 12, 7, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	p := NewParams()
	l1 := OptimizeLayout(g, p, 1000, 7)
	l2 := OptimizeLayout(g, p, 1000, 7)
	for s := range l1.CabinetOf {
		if l1.CabinetOf[s] != l2.CabinetOf[s] {
			t.Fatal("layout optimisation not deterministic")
		}
	}
}

func TestOptimizeLayoutDegenerate(t *testing.T) {
	g := hsgraph.New(2, 1, 4)
	if err := g.AttachHost(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachHost(1, 0); err != nil {
		t.Fatal(err)
	}
	l := OptimizeLayout(g, NewParams(), 100, 1)
	if l.Cabinets != 1 || len(l.CabinetOf) != 1 {
		t.Fatalf("degenerate layout wrong: %+v", l)
	}
}
