// Package phys models the physical deployment of a host-switch graph the
// way §6.2.3 of the paper does: cabinets aligned on a 2-D grid (60 cm wide,
// 210 cm deep including aisle space), Manhattan cable runs between
// cabinets, electrical cables up to 100 cm and optical beyond, and a
// power/cost model in the style of the Mellanox InfiniBand FDR10 catalog
// (constants are documented approximations; the paper's figures compare
// topologies under identical constants, so only relative values matter).
package phys

import (
	"fmt"
	"math"

	"repro/internal/hsgraph"
)

// Params holds the deployment model constants. NewParams returns the
// defaults; zero values in a hand-built Params are NOT defaulted.
type Params struct {
	CabinetWidthM float64 // cabinet pitch along a row
	CabinetDepthM float64 // row pitch (includes aisle)
	ElectricalMax float64 // metres up to which a cable is electrical
	HostCableM    float64 // host-to-switch cable length (intra-cabinet)

	SwitchesPerCabinet int

	// Power (watts)
	SwitchBasePowerW float64 // per switch chassis
	PortPowerW       float64 // per connected port
	ElecCablePowerW  float64 // per electrical cable
	OptCablePowerW   float64 // per optical cable (both transceivers)

	// Cost (dollars)
	SwitchBaseCost float64
	PortCost       float64
	ElecCableBase  float64
	ElecCablePerM  float64
	OptCableBase   float64
	OptCablePerM   float64
}

// NewParams returns the default FDR10-flavoured constants.
func NewParams() Params {
	return Params{
		CabinetWidthM:      0.6,
		CabinetDepthM:      2.1,
		ElectricalMax:      1.0,
		HostCableM:         0.5,
		SwitchesPerCabinet: 1,
		SwitchBasePowerW:   26,
		PortPowerW:         3.6, // ~130 W for a loaded 36-port SX6025
		ElecCablePowerW:    0.2, // passive copper
		OptCablePowerW:     2.0, // active optical, both ends
		SwitchBaseCost:     2000,
		PortCost:           300, // ~$12,800 for a 36-port FDR10 switch
		ElecCableBase:      45,
		ElecCablePerM:      1.3,
		OptCableBase:       150,
		OptCablePerM:       2.5,
	}
}

// Report is the deployment evaluation of one topology.
type Report struct {
	Cabinets    int
	GridCols    int
	GridRows    int
	NumElec     int     // electrical cables (host + switch links)
	NumOpt      int     // optical cables
	TotalCableM float64 // total cable length

	SwitchPowerW float64
	CablePowerW  float64
	SwitchCost   float64
	CableCost    float64
}

// TotalPowerW returns switch plus cable power.
func (r Report) TotalPowerW() float64 { return r.SwitchPowerW + r.CablePowerW }

// TotalCost returns switch plus cable cost.
func (r Report) TotalCost() float64 { return r.SwitchCost + r.CableCost }

func (r Report) String() string {
	return fmt.Sprintf("phys(cabinets=%d cables=%d elec/%d opt, %.0fm, %.0fW, $%.0f)",
		r.Cabinets, r.NumElec, r.NumOpt, r.TotalCableM, r.TotalPowerW(), r.TotalCost())
}

// Evaluate lays out the graph's switches into cabinets on a near-square
// grid and prices the deployment.
func Evaluate(g *hsgraph.Graph, p Params) Report {
	m := g.Switches()
	perCab := p.SwitchesPerCabinet
	if perCab < 1 {
		perCab = 1
	}
	cabinets := (m + perCab - 1) / perCab
	cols := int(math.Ceil(math.Sqrt(float64(cabinets))))
	if cols < 1 {
		cols = 1
	}
	rows := (cabinets + cols - 1) / cols

	cabinetOf := func(s int) int { return s / perCab }
	pos := func(cab int) (x, y float64) {
		return float64(cab%cols) * p.CabinetWidthM, float64(cab/cols) * p.CabinetDepthM
	}
	cableLen := func(a, b int) float64 {
		ca, cb := cabinetOf(a), cabinetOf(b)
		if ca == cb {
			return p.HostCableM
		}
		xa, ya := pos(ca)
		xb, yb := pos(cb)
		return math.Abs(xa-xb) + math.Abs(ya-yb)
	}

	rep := Report{Cabinets: cabinets, GridCols: cols, GridRows: rows}
	addCable := func(lenM float64) {
		rep.TotalCableM += lenM
		if lenM <= p.ElectricalMax {
			rep.NumElec++
			rep.CablePowerW += p.ElecCablePowerW
			rep.CableCost += p.ElecCableBase + p.ElecCablePerM*lenM
		} else {
			rep.NumOpt++
			rep.CablePowerW += p.OptCablePowerW
			rep.CableCost += p.OptCableBase + p.OptCablePerM*lenM
		}
	}

	// Host cables: each host sits in its switch's cabinet.
	for h := 0; h < g.Order(); h++ {
		if g.SwitchOf(h) >= 0 {
			addCable(p.HostCableM)
		}
	}
	// Switch-switch cables.
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		addCable(cableLen(a, b))
	}
	// Switch power/cost: chassis plus connected ports (both endpoints of
	// every cable count, so port count equals total degree).
	for s := 0; s < m; s++ {
		ports := float64(g.Degree(s))
		rep.SwitchPowerW += p.SwitchBasePowerW + p.PortPowerW*ports
		rep.SwitchCost += p.SwitchBaseCost + p.PortCost*ports
	}
	return rep
}
