package runstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
)

// FuzzScan feeds arbitrary bytes to the store's open scan and pins down
// the corruption contract: the scan never panics, never accepts a
// record that does not round-trip (a torn or bit-flipped record must be
// skipped, not partially decoded), and its byte accounting is exact —
// live extents plus skipped bytes cover the whole file.
func FuzzScan(f *testing.F) {
	// Seed with a healthy two-record log and mutations of it.
	dir := f.TempDir()
	s, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec := testRecord(i)
		if err := s.Append(&rec); err != nil {
			f.Fatal(err)
		}
	}
	s.Close()
	healthy, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-7]) // torn tail
	flipped := append([]byte(nil), healthy...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), healthy...), ckpt.Seal("orp.run.v999", []byte("future"))...))
	f.Add([]byte("ORPC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var st Store
		st.byID = make(map[string]int)
		st.byKey = make(map[string]int)
		st.next = 1
		st.bytes = int64(len(data))
		st.scan(data)

		stats := Stats{
			Records:        len(st.recs),
			SkippedRecords: st.skippedRecords,
			SkippedBytes:   st.skippedBytes,
			Bytes:          st.bytes,
		}
		// Every accepted record must re-encode and re-decode to itself:
		// a half-parsed (torn) record can never satisfy that, so this is
		// the "no torn record accepted" guarantee.
		var liveBytes int64
		for i := range st.recs {
			env := ckpt.Seal(RecordKind, st.recs[i].encode())
			liveBytes += int64(len(env))
			kind, payload, err := ckpt.Open(env)
			if err != nil || kind != RecordKind {
				t.Fatalf("accepted record %d does not reseal: %v", i, err)
			}
			back, err := decodeRecord(payload)
			if err != nil {
				t.Fatalf("accepted record %d does not re-decode: %v", i, err)
			}
			// Compare canonical encodings rather than struct equality:
			// the codec round-trips NaN bit patterns that DeepEqual
			// would treat as unequal.
			if !bytes.Equal(back.encode(), st.recs[i].encode()) {
				t.Fatalf("record %d not stable under round-trip", i)
			}
		}
		if liveBytes+stats.SkippedBytes != int64(len(data)) {
			t.Fatalf("byte accounting off: %d live + %d skipped != %d total",
				liveBytes, stats.SkippedBytes, len(data))
		}
		if len(data) > 0 && stats.Records == 0 && stats.SkippedRecords == 0 {
			t.Fatalf("%d bytes produced neither records nor counted skips", len(data))
		}
	})
}
