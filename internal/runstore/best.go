package runstore

import (
	"fmt"
	"sort"
)

// Cell identifies one leaderboard bucket of the order/radix problem:
// order n and switch radix r, as in the paper's Table 3 and the Graph
// Golf best-known tables. The switch count m is free in the ORP
// formulation, so by default records with different m compete in the
// same cell; a by-m split keys on it too for readers who want the
// fixed-m view.
type Cell struct {
	N int `json:"n"`
	R int `json:"r"`
	M int `json:"m,omitempty"` // 0 unless the leaderboard was split by m
}

func (c Cell) String() string {
	if c.M != 0 {
		return fmt.Sprintf("n=%d r=%d m=%d", c.N, c.R, c.M)
	}
	return fmt.Sprintf("n=%d r=%d", c.N, c.R)
}

// BestEntry is one leaderboard row: the best-known h-ASPL in a cell and
// the record that achieved it.
type BestEntry struct {
	Cell   Cell   `json:"cell"`
	Record Record `json:"record"`
}

// eligible reports whether a record can compete on the leaderboard: it
// must describe a real, connected graph with a computed h-ASPL.
func eligible(r *Record) bool {
	return r.N > 0 && r.R > 0 && r.Metrics.Connected && r.Metrics.HASPL > 0
}

// cellOf buckets a record, optionally keeping m in the key.
func cellOf(r *Record, byM bool) Cell {
	c := Cell{N: r.N, R: r.R}
	if byM {
		c.M = r.M
	}
	return c
}

// Best computes the best-known leaderboard over recs: per cell, the
// eligible record with the minimum h-ASPL. Ties go to the earliest
// record — the first achiever keeps the title. Rows come back sorted by
// (n, r, m).
func Best(recs []Record, byM bool) []BestEntry {
	best := make(map[Cell]int)
	for i := range recs {
		if !eligible(&recs[i]) {
			continue
		}
		c := cellOf(&recs[i], byM)
		j, ok := best[c]
		if !ok || recs[i].Metrics.HASPL < recs[j].Metrics.HASPL {
			best[c] = i
		}
	}
	out := make([]BestEntry, 0, len(best))
	for c, i := range best {
		out = append(out, BestEntry{Cell: c, Record: recs[i]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Cell, out[j].Cell
		if a.N != b.N {
			return a.N < b.N
		}
		if a.R != b.R {
			return a.R < b.R
		}
		return a.M < b.M
	})
	return out
}

// CheckResult is the verdict of a regression check: a candidate record
// measured against the best previously-known result in its cell.
type CheckResult struct {
	Candidate Record  `json:"candidate"`
	Cell      Cell    `json:"cell"`
	Best      *Record `json:"best,omitempty"` // nil when the candidate is first in its cell
	// Regressed is true when the candidate's h-ASPL is worse than the
	// stored best (mirrors orpbench -compare: new result vs baseline).
	Regressed bool    `json:"regressed"`
	DeltaPct  float64 `json:"deltaPct"` // (candidate-best)/best × 100; 0 when first
}

// Check compares the candidate record against the best eligible record
// among the others in its cell. A candidate that is not eligible (e.g. a
// disconnected graph) is an automatic regression when any prior eligible
// record exists in its cell.
func Check(recs []Record, candidate Record, byM bool) CheckResult {
	res := CheckResult{Candidate: candidate, Cell: cellOf(&candidate, byM)}
	var best *Record
	for i := range recs {
		if recs[i].ID == candidate.ID || !eligible(&recs[i]) {
			continue
		}
		if cellOf(&recs[i], byM) != res.Cell {
			continue
		}
		if best == nil || recs[i].Metrics.HASPL < best.Metrics.HASPL {
			best = &recs[i]
		}
	}
	if best == nil {
		return res // first result in its cell always passes
	}
	b := *best
	res.Best = &b
	if !eligible(&candidate) {
		res.Regressed = true
		return res
	}
	res.DeltaPct = (candidate.Metrics.HASPL - b.Metrics.HASPL) / b.Metrics.HASPL * 100
	res.Regressed = candidate.Metrics.HASPL > b.Metrics.HASPL
	return res
}
