// Package runstore is the durable run history: an append-only, CRC'd,
// crash-safe log of completed runs (anneals, sweeps, evals) shared by
// orpd, the batch CLIs and the orphist query tool.
//
// The on-disk format is deliberately boring: one file, runs.orplog, of
// concatenated ckpt envelopes (magic + version + kind + length + payload
// + CRC-32C), one record per envelope. There is no separate index file
// to drift out of sync — the index is rebuilt by scanning the log on
// open. Appends are a single write + fsync, so a crash can at worst
// leave one torn record at the tail, which the scan detects (the CRC
// fails or the file ends early) and skips with a counted warning; it
// never yields a partial record. Foreign or future record versions are
// skipped by envelope extent the same way, so files survive binary
// upgrades in both directions.
package runstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/ckpt"
)

// LogName is the log's file name inside a store directory.
const LogName = "runs.orplog"

// envelope header geometry (mirrors ckpt.Seal): magic(4) + version(4) +
// kindlen(4) + kind + paylen(8) + payload + crc(4).
const (
	magicStr   = "ORPC"
	headerMin  = 4 + 4 + 4 + 8 + 4
	maxKindLen = 128
)

// Stats summarizes a store's health after the open scan.
type Stats struct {
	// Records is the number of live, valid records.
	Records int `json:"records"`
	// SkippedRecords counts regions the scan could not accept: torn
	// tails, CRC mismatches, foreign record kinds.
	SkippedRecords int `json:"skippedRecords,omitempty"`
	// SkippedBytes is the total size of those regions.
	SkippedBytes int64 `json:"skippedBytes,omitempty"`
	// Bytes is the log's on-disk size.
	Bytes int64 `json:"bytes"`
}

// Store is a run-history handle. All methods are safe for concurrent
// use. Every method is also nil-receiver-safe in its read forms so call
// sites can thread an optional store without branching; the one write
// entry point designed for hot paths, AppendRun, is nil-safe too and
// skips building the record entirely.
type Store struct {
	mu   sync.Mutex
	dir  string
	path string
	f    *os.File // nil when opened read-only
	next uint64   // next record sequence number

	recs  []Record
	byID  map[string]int
	byKey map[string]int // latest record per cache key

	skippedRecords int
	skippedBytes   int64
	bytes          int64
}

// Open opens (creating if absent) the store in dir for reading and
// appending. The existing log, if any, is scanned to rebuild the index;
// corrupt or foreign regions are skipped and counted in Stats, never
// fatal — a store must stay usable after a crash mid-append.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s, err := load(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s.f = f
	return s, nil
}

// OpenRead opens the store in dir read-only. A missing directory or log
// yields an empty store, not an error: "no history yet" is a normal
// state for every query tool.
func OpenRead(dir string) (*Store, error) {
	return load(dir)
}

func load(dir string) (*Store, error) {
	s := &Store{
		dir:   dir,
		path:  filepath.Join(dir, LogName),
		next:  1,
		byID:  make(map[string]int),
		byKey: make(map[string]int),
	}
	data, err := os.ReadFile(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, fmt.Errorf("runstore: %w", err)
	}
	s.bytes = int64(len(data))
	s.scan(data)
	return s, nil
}

// scan walks the log, accepting every valid record and resyncing past
// anything else. It must never panic and never accept a torn record,
// whatever the bytes — the package fuzz test pins that down.
func (s *Store) scan(data []byte) {
	off := 0
	for off < len(data) {
		ext, ok := envelopeExtent(data[off:])
		if !ok {
			// No parseable envelope here: resync at the next magic.
			skip := nextMagic(data[off+1:])
			if skip < 0 {
				s.skip(len(data) - off)
				return
			}
			s.skip(1 + skip)
			off += 1 + skip
			continue
		}
		kind, payload, err := ckpt.Open(data[off : off+ext])
		if err != nil || kind != RecordKind {
			s.skip(ext)
			off += ext
			continue
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			s.skip(ext)
			off += ext
			continue
		}
		s.index(rec)
		if seq, ok := parseID(rec.ID); ok && seq >= s.next {
			s.next = seq + 1
		}
		off += ext
	}
}

func (s *Store) skip(n int) {
	s.skippedRecords++
	s.skippedBytes += int64(n)
}

// envelopeExtent computes the total byte length of the envelope starting
// at data[0] from its header fields alone, without trusting them further
// than bounds checks — the CRC inside ckpt.Open is what validates the
// contents.
func envelopeExtent(data []byte) (int, bool) {
	if len(data) < headerMin || string(data[:4]) != magicStr {
		return 0, false
	}
	kl := int(uint32(data[8]) | uint32(data[9])<<8 | uint32(data[10])<<16 | uint32(data[11])<<24)
	if kl > maxKindLen || len(data) < 12+kl+8 {
		return 0, false
	}
	plOff := 12 + kl
	pl := uint64(data[plOff]) | uint64(data[plOff+1])<<8 | uint64(data[plOff+2])<<16 |
		uint64(data[plOff+3])<<24 | uint64(data[plOff+4])<<32 | uint64(data[plOff+5])<<40 |
		uint64(data[plOff+6])<<48 | uint64(data[plOff+7])<<56
	if pl > ckpt.MaxPayload {
		return 0, false
	}
	ext := plOff + 8 + int(pl) + 4
	if len(data) < ext {
		return 0, false
	}
	return ext, true
}

func nextMagic(data []byte) int {
	return bytes.Index(data, []byte(magicStr))
}

func parseID(id string) (uint64, bool) {
	if len(id) < 2 || id[0] != 'r' {
		return 0, false
	}
	var n uint64
	for i := 1; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

func (s *Store) index(rec Record) {
	s.recs = append(s.recs, rec)
	i := len(s.recs) - 1
	s.byID[rec.ID] = i
	if rec.Key != "" {
		s.byKey[rec.Key] = i
	}
}

// Append assigns the record an ID, writes its envelope to the log and
// fsyncs before returning — once Append returns nil, the record survives
// a crash. The assigned ID is written back into rec.
func (s *Store) Append(rec *Record) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("runstore: store is read-only")
	}
	rec.ID = fmt.Sprintf("r%08d", s.next)
	env := ckpt.Seal(RecordKind, rec.encode())
	if _, err := s.f.Write(env); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	s.next++
	s.bytes += int64(len(env))
	s.index(*rec)
	return nil
}

// AppendRun is the hot-path append: build constructs the record only
// when a store is actually configured. With a nil receiver it returns
// immediately without calling build — the disabled path costs nothing
// and allocates nothing.
func (s *Store) AppendRun(build func() Record) error {
	if s == nil {
		return nil
	}
	rec := build()
	return s.Append(&rec)
}

// Records returns a copy of the live records in log order.
func (s *Store) Records() []Record {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.recs...)
}

// Recent returns the records sorted newest-first, at most limit of them
// (limit <= 0 means all).
func (s *Store) Recent(limit int) []Record {
	recs := s.Records()
	sortByUnix(recs)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	return recs
}

// Get returns the record with the given ID.
func (s *Store) Get(id string) (Record, bool) {
	if s == nil {
		return Record{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byID[id]; ok {
		return s.recs[i], true
	}
	return Record{}, false
}

// LookupResult returns the stored result bytes for a cache key — the
// latest record that carried that key — or nil. This is the restart-warm
// path of the orpd result cache: the bytes are exactly what the original
// run served, so replies stay byte-identical across process restarts.
func (s *Store) LookupResult(key string) []byte {
	if s == nil || key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byKey[key]; ok {
		return s.recs[i].Result
	}
	return nil
}

// Len returns the number of live records.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Stats reports the store's scan and size counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Records:        len(s.recs),
		SkippedRecords: s.skippedRecords,
		SkippedBytes:   s.skippedBytes,
		Bytes:          s.bytes,
	}
}

// Dir returns the store directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Compact rewrites the log with only the live records — corrupt regions
// and skipped bytes are dropped — using the same atomic temp + fsync +
// rename discipline as ckpt.WriteFile. Record IDs are preserved. The
// store must be writable.
func (s *Store) Compact() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("runstore: store is read-only")
	}
	tmp, err := os.CreateTemp(s.dir, LogName+".tmp*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	var total int64
	for i := range s.recs {
		env := ckpt.Seal(RecordKind, s.recs[i].encode())
		if _, err := tmp.Write(env); err != nil {
			tmp.Close()
			return fmt.Errorf("runstore: %w", err)
		}
		total += int64(len(env))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	// Reopen the append handle on the new file: the old descriptor still
	// points at the unlinked pre-compaction inode.
	s.f.Close()
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		return fmt.Errorf("runstore: %w", err)
	}
	s.f = f
	s.bytes = total
	s.skippedRecords = 0
	s.skippedBytes = 0
	return nil
}

// Close releases the append handle. Read-only and nil stores are no-ops.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

// sortByUnix orders records newest-first, breaking timestamp ties by
// descending sequence so the order is total and stable.
func sortByUnix(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Unix != recs[j].Unix {
			return recs[i].Unix > recs[j].Unix
		}
		si, _ := parseID(recs[i].ID)
		sj, _ := parseID(recs[j].ID)
		return si > sj
	})
}
