package runstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ckpt"
)

func testRecord(i int) Record {
	return Record{
		Unix:        int64(1700000000_000000000 + i),
		Tool:        "orpsolve",
		Kind:        "anneal",
		Build:       "repro test",
		Key:         fmt.Sprintf("key-%d", i),
		Fingerprint: fmt.Sprintf("fp-%04x", i),
		Seed:        uint64(100 + i),
		N:           64, M: 16, R: 8,
		Symmetry: 1,
		EvalMode: "exact",
		Workers:  4,
		Metrics: Metrics{
			HASPL: 3.5 - float64(i)*0.01, Diameter: 4, Connected: true,
			TotalPath: 14000 + int64(i), ReachablePairs: 4032,
		},
		EnergyTrace:       []float64{5, 4, 3.5},
		EnergyTraceStride: 10,
		Phases:            []Phase{{Name: "anneal", Seconds: 1.25}, {Name: "eval", Seconds: 0.5}},
		WallSeconds:       1.75,
		CPUSeconds:        6.8,
		Result:            []byte(fmt.Sprintf(`{"i":%d}`, i)),
	}
}

func mustAppend(t *testing.T, s *Store, rec Record) Record {
	t.Helper()
	if err := s.Append(&rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
	return rec
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want []Record
	for i := 0; i < 5; i++ {
		want = append(want, mustAppend(t, s, testRecord(i)))
	}
	if want[0].ID != "r00000001" {
		t.Fatalf("first ID = %q, want r00000001", want[0].ID)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatalf("OpenRead: %v", err)
	}
	got := r.Records()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records after reopen differ:\n got %+v\nwant %+v", got, want)
	}
	if st := r.Stats(); st.Records != 5 || st.SkippedRecords != 0 {
		t.Fatalf("stats = %+v, want 5 records, 0 skipped", st)
	}
	// ID sequence continues where it left off.
	w, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen for write: %v", err)
	}
	defer w.Close()
	rec := mustAppend(t, w, testRecord(5))
	if rec.ID != "r00000006" {
		t.Fatalf("ID after reopen = %q, want r00000006", rec.ID)
	}
}

func TestLookupResultByteIdentityAndLatestWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	first := testRecord(1)
	first.Key = "shared"
	first.Result = []byte(`{"v":1}`)
	mustAppend(t, s, first)
	second := testRecord(2)
	second.Key = "shared"
	second.Result = []byte(`{"v":2}`)
	mustAppend(t, s, second)

	if got := s.LookupResult("shared"); !bytes.Equal(got, second.Result) {
		t.Fatalf("LookupResult = %q, want latest %q", got, second.Result)
	}
	if got := s.LookupResult("absent"); got != nil {
		t.Fatalf("LookupResult(absent) = %q, want nil", got)
	}

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatalf("OpenRead: %v", err)
	}
	if got := r.LookupResult("shared"); !bytes.Equal(got, second.Result) {
		t.Fatalf("after reopen LookupResult = %q, want %q", got, second.Result)
	}
}

func TestOpenReadMissingIsEmpty(t *testing.T) {
	s, err := OpenRead(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatalf("OpenRead on missing dir: %v", err)
	}
	if s.Len() != 0 || len(s.Records()) != 0 {
		t.Fatalf("missing store not empty: %+v", s.Stats())
	}
}

func TestTruncatedTailSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, s, testRecord(i))
	}
	s.Close()

	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 10 bytes (simulates a crash
	// mid-append).
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatalf("OpenRead after truncation: %v", err)
	}
	st := r.Stats()
	if st.Records != 2 {
		t.Fatalf("records after truncation = %d, want 2", st.Records)
	}
	if st.SkippedRecords == 0 || st.SkippedBytes == 0 {
		t.Fatalf("truncation not counted: %+v", st)
	}
	// The sequence must not reuse the torn record's ID slot... appending
	// after a torn tail may reuse it (the torn record was never
	// acknowledged), but it must not collide with a live one.
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := mustAppend(t, w, testRecord(9))
	if _, ok := parseID(rec.ID); !ok {
		t.Fatalf("bad ID %q", rec.ID)
	}
	for _, live := range w.Records()[:2] {
		if live.ID == rec.ID {
			t.Fatalf("new ID %q collides with live record", rec.ID)
		}
	}
}

func TestFlippedCRCMiddleRecordSkippedOthersSurvive(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var sizes []int
	for i := 0; i < 3; i++ {
		before := s.Stats().Bytes
		mustAppend(t, s, testRecord(i))
		sizes = append(sizes, int(s.Stats().Bytes-before))
	}
	s.Close()

	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle record; its CRC now fails but
	// its header (and so its extent) still parses, and the scan must
	// skip exactly it.
	data[sizes[0]+sizes[1]/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatalf("OpenRead: %v", err)
	}
	st := r.Stats()
	if st.Records != 2 || st.SkippedRecords != 1 || st.SkippedBytes != int64(sizes[1]) {
		t.Fatalf("stats = %+v, want 2 live, 1 skipped of %d bytes", st, sizes[1])
	}
	recs := r.Records()
	if recs[0].ID != "r00000001" || recs[1].ID != "r00000003" {
		t.Fatalf("surviving IDs = %q, %q", recs[0].ID, recs[1].ID)
	}
}

func TestCorruptMagicResyncs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, testRecord(0))
	mustAppend(t, s, testRecord(1))
	s.Close()

	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy the first record's magic: the scanner cannot even size the
	// envelope and must resync forward to the second record's magic.
	data[0] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Records != 1 || st.SkippedRecords == 0 {
		t.Fatalf("stats = %+v, want 1 live record and a counted skip", st)
	}
	if got := r.Records()[0].ID; got != "r00000002" {
		t.Fatalf("surviving record = %q, want r00000002", got)
	}
}

func TestForeignKindSkippedWithCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, testRecord(0))
	s.Close()

	// Splice in an envelope of a future record version between two valid
	// records, as a mixed-version file after a partial upgrade would have.
	path := filepath.Join(dir, LogName)
	foreign := ckpt.Seal("orp.run.v999", []byte("from the future"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(foreign); err != nil {
		t.Fatal(err)
	}
	f.Close()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, w, testRecord(1))
	w.Close()

	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Records != 2 || st.SkippedRecords != 1 || st.SkippedBytes != int64(len(foreign)) {
		t.Fatalf("stats = %+v, want 2 live + 1 foreign skip of %d bytes", st, len(foreign))
	}
}

func TestCompactDropsCorruptionKeepsRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, testRecord(0))
	s.Close()
	// Corrupt the tail, then append two more records around the damage.
	path := filepath.Join(dir, LogName)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte("garbage bytes not an envelope"))
	f.Close()
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, testRecord(1))
	want := s.Records()
	if st := s.Stats(); st.SkippedRecords == 0 {
		t.Fatalf("expected skipped garbage before compaction, got %+v", st)
	}

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := s.Stats(); st.SkippedRecords != 0 || st.SkippedBytes != 0 {
		t.Fatalf("skips survive compaction: %+v", st)
	}
	// Post-compaction appends land in the new file and everything
	// round-trips.
	want = append(want, mustAppend(t, s, testRecord(2)))
	s.Close()
	r, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("after compact+reopen:\n got %+v\nwant %+v", got, want)
	}
	if st := r.Stats(); st.SkippedRecords != 0 {
		t.Fatalf("compacted file still has skips: %+v", st)
	}
}

func TestBestLeaderboard(t *testing.T) {
	var recs []Record
	add := func(id string, n, r, m int, haspl float64, connected bool) {
		recs = append(recs, Record{
			ID: id, N: n, R: r, M: m,
			Metrics: Metrics{HASPL: haspl, Connected: connected},
		})
	}
	add("r00000001", 64, 8, 16, 3.50, true)
	add("r00000002", 64, 8, 16, 3.40, true)  // best of n=64,r=8
	add("r00000003", 64, 8, 20, 3.45, true)  // worse, different m
	add("r00000004", 64, 8, 16, 3.10, false) // disconnected: ineligible
	add("r00000005", 128, 8, 32, 4.20, true)
	add("r00000006", 64, 8, 16, 3.40, true) // tie: first achiever keeps it

	best := Best(recs, false)
	if len(best) != 2 {
		t.Fatalf("got %d cells, want 2: %+v", len(best), best)
	}
	if best[0].Cell != (Cell{N: 64, R: 8}) || best[0].Record.ID != "r00000002" {
		t.Fatalf("n=64 best = %+v, want r00000002", best[0])
	}
	if best[1].Cell != (Cell{N: 128, R: 8}) || best[1].Record.ID != "r00000005" {
		t.Fatalf("n=128 best = %+v", best[1])
	}

	byM := Best(recs, true)
	if len(byM) != 3 {
		t.Fatalf("by-m split: got %d cells, want 3: %+v", len(byM), byM)
	}
	if byM[1].Cell != (Cell{N: 64, R: 8, M: 20}) || byM[1].Record.ID != "r00000003" {
		t.Fatalf("by-m n=64,m=20 = %+v", byM[1])
	}
}

func TestCheckRegression(t *testing.T) {
	base := Record{ID: "r00000001", N: 64, R: 8, M: 16,
		Metrics: Metrics{HASPL: 3.40, Connected: true}}
	worse := Record{ID: "r00000002", N: 64, R: 8, M: 16,
		Metrics: Metrics{HASPL: 3.55, Connected: true}}
	better := Record{ID: "r00000003", N: 64, R: 8, M: 16,
		Metrics: Metrics{HASPL: 3.30, Connected: true}}
	firstCell := Record{ID: "r00000004", N: 256, R: 12,
		Metrics: Metrics{HASPL: 5.0, Connected: true}}
	disconnected := Record{ID: "r00000005", N: 64, R: 8,
		Metrics: Metrics{HASPL: 0, Connected: false}}
	recs := []Record{base, worse, better, firstCell, disconnected}

	if res := Check(recs, worse, false); !res.Regressed || res.Best == nil || res.Best.ID != "r00000003" {
		t.Fatalf("worse candidate: %+v, want regression vs r00000003", res)
	}
	if res := Check(recs, better, false); res.Regressed {
		t.Fatalf("better candidate flagged as regression: %+v", res)
	}
	if res := Check(recs, firstCell, false); res.Regressed || res.Best != nil {
		t.Fatalf("first-in-cell candidate: %+v, want clean pass with no best", res)
	}
	if res := Check(recs, disconnected, false); !res.Regressed {
		t.Fatalf("disconnected candidate must regress when a prior best exists: %+v", res)
	}
}

func TestNilStoreIsInertAndAllocFree(t *testing.T) {
	var s *Store
	if err := s.Append(&Record{}); err != nil {
		t.Fatalf("nil Append: %v", err)
	}
	built := false
	if err := s.AppendRun(func() Record { built = true; return Record{} }); err != nil {
		t.Fatalf("nil AppendRun: %v", err)
	}
	if built {
		t.Fatal("AppendRun called build on a nil store")
	}
	if s.Len() != 0 || s.Records() != nil || s.LookupResult("k") != nil || s.Dir() != "" {
		t.Fatal("nil store reads not inert")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	// The disabled path must cost nothing: no allocations per append.
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.AppendRun(func() Record { return testRecord(0) })
	})
	if allocs != 0 {
		t.Fatalf("nil-store AppendRun allocates %.1f per call, want 0", allocs)
	}
}

func TestConcurrentAppendAndLookup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rec := testRecord(w*25 + i)
				if err := s.Append(&rec); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				s.LookupResult(rec.Key)
				s.Len()
				s.Stats()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	seen := map[string]bool{}
	for _, r := range s.Records() {
		if seen[r.ID] {
			t.Fatalf("duplicate ID %q", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestSortByUnix(t *testing.T) {
	recs := []Record{
		{ID: "r00000001", Unix: 10},
		{ID: "r00000003", Unix: 30},
		{ID: "r00000002", Unix: 30},
	}
	sortByUnix(recs)
	if recs[0].ID != "r00000003" || recs[1].ID != "r00000002" || recs[2].ID != "r00000001" {
		t.Fatalf("order = %q %q %q", recs[0].ID, recs[1].ID, recs[2].ID)
	}
}
