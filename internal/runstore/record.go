package runstore

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/ckpt"
)

// RecordKind is the payload kind string sealed into every record's
// envelope. Bump the suffix whenever the binary layout below changes;
// a store scan skips (and counts) records of any other kind rather than
// guessing at their layout, so old and new records can share one file
// without a torn read.
const RecordKind = "orp.run.v1"

// Decode caps. A corrupt length field must not be able to demand more
// memory than the envelope could physically hold; these are generous
// bounds on real records, not format limits.
const (
	maxString      = 1 << 12 // kind/tool/ID/fingerprint/eval-mode strings
	maxTracePoints = 1 << 16 // energy-trace samples kept per record
	maxPhases      = 1 << 8  // wall-time decomposition entries
	maxResult      = 1 << 26 // 64 MiB of result JSON
)

// Metrics is the flat evaluation summary stored per record. It mirrors
// hsgraph.Metrics field for field but is owned by the store so the file
// format cannot drift when the in-memory type grows.
type Metrics struct {
	HASPL          float64 `json:"haspl"`
	Diameter       int     `json:"diameter"`
	Connected      bool    `json:"connected"`
	TotalPath      int64   `json:"totalPath"`
	ReachablePairs int64   `json:"reachablePairs"`
}

// Phase is one entry of a record's span-derived wall-time decomposition
// (e.g. "queue.wait" → 1.4s). Stored as an ordered slice rather than a
// map so equal records always encode to equal bytes.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Record is one completed run: an anneal, a fault sweep or a graph
// evaluation, whether it ran inside orpd or as a batch CLI invocation.
// Everything needed to query history without re-running anything — the
// problem cell (N, R, M), the search configuration, the final metrics, a
// bounded convergence trace, the wall-time decomposition, and the
// verbatim result-JSON bytes the run produced (the byte-identity
// contract of the orpd result cache rides on these bytes).
type Record struct {
	// ID is assigned by Store.Append ("r00000042") and survives
	// compaction.
	ID string `json:"id"`
	// Unix is the completion time in nanoseconds since the epoch.
	Unix int64 `json:"unix"`
	// Tool names the producing process: "orpd", "orpsolve", "orpfault".
	Tool string `json:"tool"`
	// Kind is the run type: "eval", "anneal" or "sweep".
	Kind string `json:"kind"`
	// Build is the producing binary's build identity (buildinfo.String).
	Build string `json:"build,omitempty"`

	// Key is the content address of the result for cache-addressable
	// runs (orpd's JobSpec.cacheKey). Empty for CLI runs: their result
	// JSON schemas differ from the service's, so serving them from the
	// orpd cache would break byte-identity.
	Key string `json:"key,omitempty"`
	// Fingerprint is the canonical graph fingerprint (hex) of the run's
	// final graph.
	Fingerprint string `json:"fingerprint,omitempty"`

	Seed     uint64 `json:"seed"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	R        int    `json:"r"`
	Symmetry int    `json:"symmetry,omitempty"`
	EvalMode string `json:"evalMode,omitempty"`
	Workers  int    `json:"workers,omitempty"`

	Metrics Metrics `json:"metrics"`

	// EnergyTrace is the bounded best-energy convergence trace
	// (opt.Result.EnergyTrace, already decimated to EnergyTraceMax by
	// the annealer); Stride is iterations per sample.
	EnergyTrace       []float64 `json:"energyTrace,omitempty"`
	EnergyTraceStride int       `json:"energyTraceStride,omitempty"`

	// Phases is the span-derived wall-time decomposition of the run
	// (orpd: admission/cache.lookup/queue.wait/run episodes; CLIs:
	// engine stage spans), sorted by name.
	Phases []Phase `json:"phases,omitempty"`

	WallSeconds float64 `json:"wallSeconds"`
	// CPUSeconds is the process CPU time attributable to the run where
	// the producer can measure it (single-run CLIs); 0 when it cannot
	// (concurrent orpd jobs share one process).
	CPUSeconds float64 `json:"cpuSeconds,omitempty"`

	// Result is the run's verbatim result-JSON bytes. Deliberately kept
	// out of the record's own JSON marshaling (history listings would
	// balloon); orphist show -result prints it explicitly.
	Result []byte `json:"-"`
}

// PhasesFromDurations converts a name→seconds map (obs.PhaseDurations)
// into the deterministic sorted form records store.
func PhasesFromDurations(d map[string]float64) []Phase {
	if len(d) == 0 {
		return nil
	}
	out := make([]Phase, 0, len(d))
	for name, sec := range d {
		out = append(out, Phase{Name: name, Seconds: sec})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MetricsOf flattens the evaluation summary from its report-level
// pieces. haspl is the connected-graph h-ASPL (callers pass the raw
// metric, not the -1 sentinel GraphReport uses for disconnection).
func MetricsOf(haspl float64, diameter int, connected bool, totalPath, reachablePairs int64) Metrics {
	return Metrics{
		HASPL:          haspl,
		Diameter:       diameter,
		Connected:      connected,
		TotalPath:      totalPath,
		ReachablePairs: reachablePairs,
	}
}

// encode serializes the record payload with the ckpt codec: fixed field
// order, length-prefixed slices, no maps — equal records encode to equal
// bytes.
func (r *Record) encode() []byte {
	var e ckpt.Enc
	e.String(r.ID)
	e.I64(r.Unix)
	e.String(r.Tool)
	e.String(r.Kind)
	e.String(r.Build)
	e.String(r.Key)
	e.String(r.Fingerprint)
	e.U64(r.Seed)
	e.Int(r.N)
	e.Int(r.M)
	e.Int(r.R)
	e.Int(r.Symmetry)
	e.String(r.EvalMode)
	e.Int(r.Workers)
	e.F64(r.Metrics.HASPL)
	e.Int(r.Metrics.Diameter)
	e.Bool(r.Metrics.Connected)
	e.I64(r.Metrics.TotalPath)
	e.I64(r.Metrics.ReachablePairs)
	e.F64s(r.EnergyTrace)
	e.Int(r.EnergyTraceStride)
	e.U64(uint64(len(r.Phases)))
	for _, p := range r.Phases {
		e.String(p.Name)
		e.F64(p.Seconds)
	}
	e.F64(r.WallSeconds)
	e.F64(r.CPUSeconds)
	e.Bytes(r.Result)
	return e.Finish()
}

// decodeRecord parses a payload written by encode. Like every decoder in
// this repository's persistence layer it never panics and never
// allocates more than the input could hold: the first bounds failure
// sticks and surfaces as an error.
func decodeRecord(payload []byte) (Record, error) {
	d := ckpt.NewDec(payload)
	var r Record
	r.ID = d.String(maxString)
	r.Unix = d.I64()
	r.Tool = d.String(maxString)
	r.Kind = d.String(maxString)
	r.Build = d.String(maxString)
	r.Key = d.String(maxString)
	r.Fingerprint = d.String(maxString)
	r.Seed = d.U64()
	r.N = d.Int()
	r.M = d.Int()
	r.R = d.Int()
	r.Symmetry = d.Int()
	r.EvalMode = d.String(maxString)
	r.Workers = d.Int()
	r.Metrics.HASPL = d.F64()
	r.Metrics.Diameter = d.Int()
	r.Metrics.Connected = d.Bool()
	r.Metrics.TotalPath = d.I64()
	r.Metrics.ReachablePairs = d.I64()
	r.EnergyTrace = d.F64s(maxTracePoints)
	r.EnergyTraceStride = d.Int()
	nPhases := d.U64()
	if nPhases > maxPhases {
		return Record{}, fmt.Errorf("runstore: %d phases exceeds cap %d", nPhases, maxPhases)
	}
	if d.Err() == nil {
		r.Phases = make([]Phase, 0, nPhases)
		for i := uint64(0); i < nPhases; i++ {
			r.Phases = append(r.Phases, Phase{Name: d.String(maxString), Seconds: d.F64()})
		}
	}
	r.WallSeconds = d.F64()
	r.CPUSeconds = d.F64()
	// Copy out of the envelope buffer: the scan reuses it.
	if b := d.Bytes(maxResult); len(b) > 0 {
		r.Result = append([]byte(nil), b...)
	}
	if err := d.Done(); err != nil {
		return Record{}, err
	}
	if r.ID == "" {
		return Record{}, fmt.Errorf("runstore: record without an ID")
	}
	return r, nil
}

// ResultJSON returns the record's result bytes as a json.RawMessage
// (nil when the record carries none).
func (r *Record) ResultJSON() json.RawMessage { return r.Result }
