package cliutil

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/opt"
)

func TestWorkers(t *testing.T) {
	if _, err := Workers(-1); err == nil || !strings.Contains(err.Error(), "-workers must be >= 0") {
		t.Fatalf("Workers(-1) = %v, want validation error", err)
	}
	for _, n := range []int{0, 1, 16} {
		got, err := Workers(n)
		if err != nil || got != n {
			t.Fatalf("Workers(%d) = %d, %v", n, got, err)
		}
	}
}

func TestStartMetricsEmptyAddr(t *testing.T) {
	srv, err := StartMetrics("", obs.NewRegistry())
	if srv != nil || err != nil {
		t.Fatalf("StartMetrics(\"\") = %v, %v; want nil, nil", srv, err)
	}
}

func TestStartMetricsServes(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cliutil_test_total", "help").Inc()
	srv, err := StartMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "cliutil_test_total 1") {
		t.Fatalf("exposition missing counter:\n%s", buf[:n])
	}
}

func TestOpenSinkEmptyPathAndNilSafety(t *testing.T) {
	s, err := OpenSink("")
	if s != nil || err != nil {
		t.Fatalf("OpenSink(\"\") = %v, %v; want nil, nil", s, err)
	}
	// All methods must be no-ops on the nil sink the CLIs carry when
	// -trace-out is unset.
	if err := s.Emit(obs.Event{Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSinkTruncatesAndAppendSinkContinues covers both sink modes —
// the regression here is that every caller used to get os.Create
// semantics, so a -resume wiped the interrupted run's event log.
func TestOpenSinkTruncatesAndAppendSinkContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.jsonl")

	s1, err := OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s1.Emit(obs.Event{Kind: "first"})
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Append mode keeps what is there and adds no second header.
	s2, err := AppendSink(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.Emit(obs.Event{Kind: "second"})
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	evs := readEvents(t, path)
	kinds := []string{}
	for _, e := range evs {
		kinds = append(kinds, string(e.Kind))
	}
	if len(evs) != 3 || evs[0].Kind != obs.KindHeader || evs[1].Kind != "first" || evs[2].Kind != "second" {
		t.Fatalf("appended stream = %v, want [header first second]", kinds)
	}

	// Append mode on a missing or empty file starts a fresh stream with
	// exactly one header.
	freshPath := filepath.Join(t.TempDir(), "fresh.jsonl")
	s3, err := AppendSink(freshPath)
	if err != nil {
		t.Fatal(err)
	}
	s3.Emit(obs.Event{Kind: "only"})
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
	if evs := readEvents(t, freshPath); len(evs) != 2 || evs[0].Kind != obs.KindHeader || evs[1].Kind != "only" {
		t.Fatalf("fresh append stream wrong: %+v", evs)
	}
	if s, err := AppendSink(""); s != nil || err != nil {
		t.Fatalf("AppendSink(\"\") = %v, %v; want nil, nil", s, err)
	}

	// Truncate mode starts over.
	s4, err := OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s4.Close(); err != nil {
		t.Fatal(err)
	}
	if evs := readEvents(t, path); len(evs) != 1 || evs[0].Kind != obs.KindHeader {
		t.Fatalf("truncated stream wrong: %+v", evs)
	}
}

func readEvents(t *testing.T, path string) []obs.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestInterruptArmsOnSignal delivers a real SIGINT to the test process;
// the installed handler must swallow it (the process survives) and arm
// the flag.
func TestInterruptArmsOnSignal(t *testing.T) {
	flag := Interrupt()
	if flag.Load() {
		t.Fatal("interrupt flag armed before any signal")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !flag.Load() {
		if time.Now().After(deadline) {
			t.Fatal("interrupt flag not armed within 5s of SIGINT")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAnnealObserverSurfaces(t *testing.T) {
	if NewAnnealObserver(nil, nil, false) != nil {
		t.Fatal("all-off observer should be nil so the annealer stays on its zero-cost path")
	}

	path := filepath.Join(t.TempDir(), "e.jsonl")
	sink, err := OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ao := NewAnnealObserver(reg, sink, false)
	ao.ObserveAnneal(opt.AnnealSample{
		Restart: 1, Iter: 500, Iterations: 1000, Temp: 3.5,
		Current: 120, Best: 110, Accepted: 30, Proposed: 50,
		Moves:       opt.MoveCounters{SwingAttempts: 25, SwingAccepts: 15, CounterAttempts: 25, CounterAccepts: 15},
		MovesPerSec: 1e5, Elapsed: 0.25,
	})
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Gauges mirror the sample.
	vals := map[string]float64{}
	for _, m := range reg.Snapshot() {
		vals[m.Name] = m.Gauge
	}
	if vals["anneal_best_energy"] != 110 || vals["anneal_temperature"] != 3.5 {
		t.Fatalf("gauges wrong: %v", vals)
	}
	if got := vals["anneal_accept_rate"]; got != 0.6 {
		t.Fatalf("accept rate gauge %v, want 0.6", got)
	}

	// The JSONL stream carries the schema header and a well-formed sample.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != obs.KindHeader || evs[1].Kind != obs.KindAnnealSample {
		t.Fatalf("events %+v", evs)
	}
	s := evs[1]
	if s.T != 0.25 || s.F["iter"] != 500 || s.F["best"] != 110 || s.F["restart"] != 1 ||
		s.F["swingAccepts"] != 15 || s.F["counterAttempts"] != 25 {
		t.Fatalf("sample event wrong: %+v", s)
	}
}
