//go:build unix

package cliutil

import "syscall"

// CPUSeconds returns the process's cumulative user+system CPU time, for
// the wall/CPU pair in run-store records (CPU ≫ wall means the workers
// actually parallelised; CPU ≈ wall means a serial bottleneck). Returns
// 0 when the platform cannot report it.
func CPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	tv := func(t syscall.Timeval) float64 { return float64(t.Sec) + float64(t.Usec)/1e6 }
	return tv(ru.Utime) + tv(ru.Stime)
}
