package cliutil

import (
	"flag"
	"os"

	"repro/internal/buildinfo"
)

// VersionFlag registers the shared -version flag every orp* command
// carries. Call before flag.Parse and hand the result to ExitIfVersion.
func VersionFlag() *bool {
	return flag.Bool("version", false, "print build information and exit")
}

// ExitIfVersion prints the build identity for tool and exits 0 when the
// -version flag was set. Call immediately after flag.Parse, before any
// argument validation, so `orptool -version` works without operands.
func ExitIfVersion(tool string, v *bool) {
	if v != nil && *v {
		buildinfo.Fprintln(os.Stdout, tool)
		os.Exit(0)
	}
}
