//go:build !unix

package cliutil

// CPUSeconds reports 0 on platforms without rusage accounting; records
// written there simply omit the CPU column.
func CPUSeconds() float64 { return 0 }
