// Package cliutil holds the small pieces shared by the orp* commands:
// uniform -workers validation, the -metrics-addr endpoint bring-up, and
// the -progress / -trace-out anneal observer. It keeps the CLIs thin and
// the telemetry wiring identical across tools.
package cliutil

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/opt"
)

// Workers validates a -workers flag value: negatives are rejected, zero
// means "auto" (the engines resolve it to GOMAXPROCS or a share of it),
// positives pass through.
func Workers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("-workers must be >= 0 (0 = auto), got %d", n)
	}
	return n, nil
}

// StartMetrics brings up the telemetry HTTP endpoint when addr is
// non-empty and announces the bound address on stderr (addr may end in
// ":0"; the printed address carries the chosen port). Returns nil when
// addr is empty. Callers should defer srv.Close().
func StartMetrics(addr string, r *obs.Registry) (*obs.Server, error) {
	if addr == "" {
		return nil, nil
	}
	srv, err := obs.Serve(addr, r)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr)
	return srv, nil
}

// OpenSink creates path (truncating any existing file) and wraps it in a
// JSONL event sink. Returns nil when path is empty. Close flushes and
// closes the file.
func OpenSink(path string) (*SinkFile, error) {
	return openSink(path, false)
}

// AppendSink opens path for appending — the mode -resume needs: a
// resumed run continues the interrupted run's event log instead of
// truncating it (the bug OpenSink's os.Create forced on every caller).
// The schema header is only emitted when the file is new or empty, so an
// appended stream still carries exactly one header. Returns nil when
// path is empty.
func AppendSink(path string) (*SinkFile, error) {
	return openSink(path, true)
}

func openSink(path string, appendMode bool) (*SinkFile, error) {
	if path == "" {
		return nil, nil
	}
	if !appendMode {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return &SinkFile{Sink: obs.NewJSONLSink(f), f: f}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > 0 {
		return &SinkFile{Sink: obs.NewJSONLSinkContinue(f), f: f}, nil
	}
	return &SinkFile{Sink: obs.NewJSONLSink(f), f: f}, nil
}

// Interrupt installs the shared SIGINT/SIGTERM handling of the orp*
// commands and returns the flag the engines poll (opt.Options.Interrupt,
// fault.SweepOptions.Interrupt). The first signal arms the flag — the
// engine writes a final checkpoint and returns ckpt.ErrInterrupted; a
// second signal aborts immediately with the conventional 128+SIGINT
// status.
func Interrupt() *atomic.Bool {
	flag := &atomic.Bool{}
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		flag.Store(true)
		fmt.Fprintln(os.Stderr, "interrupted: saving checkpoint and exiting (signal again to abort)")
		<-ch
		os.Exit(130)
	}()
	return flag
}

// SinkFile is a JSONLSink bound to a file it owns.
type SinkFile struct {
	Sink *obs.JSONLSink
	f    *os.File
}

// Close flushes the sink and closes the file. The sink's Close flushes
// buffered events even when a mid-stream write error poisoned it (the
// intact prefix reaches the file; the sticky error is returned), and
// the file is always closed.
func (s *SinkFile) Close() error {
	if s == nil {
		return nil
	}
	serr := s.Sink.Close()
	ferr := s.f.Close()
	if serr != nil {
		return serr
	}
	return ferr
}

// Emit writes one event (no-op on a nil SinkFile).
func (s *SinkFile) Emit(e obs.Event) error {
	if s == nil {
		return nil
	}
	return s.Sink.Emit(e)
}

// SinkTracer returns a tracer whose span events land in sink, for the
// CLIs' -trace-out files: the root span goes to core.Solve /
// fault.Sweep (Options.Span), and orptrace later rebuilds the stage
// waterfall from the same file that carries the sample events. A nil
// sink returns a nil tracer, which keeps every span call on the
// zero-cost nil path.
func SinkTracer(id string, sink *SinkFile) *obs.Tracer {
	if sink == nil {
		return nil
	}
	return obs.NewTracer(id, time.Time{}, func(e obs.Event) { sink.Emit(e) })
}

// SpanCollector buffers span events in memory so a CLI can compute its
// run's wall-time decomposition (obs.PhaseDurations) for a run-store
// record, independently of whether a -trace-out sink is also writing
// them to disk. Safe for concurrent use (ParallelAnneal restarts end
// spans concurrently).
type SpanCollector struct {
	mu     sync.Mutex
	events []obs.Event
}

// Add records one event (only span events are kept).
func (c *SpanCollector) Add(e obs.Event) {
	if c == nil || e.Kind != obs.KindSpan {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns the collected span events.
func (c *SpanCollector) Events() []obs.Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Event(nil), c.events...)
}

// TeeTracer returns a tracer emitting to the sink (when non-nil) and
// the collector (when non-nil). With both nil it returns a nil tracer,
// keeping every span call on the zero-cost nil path — the tracer only
// exists when at least one consumer does.
func TeeTracer(id string, sink *SinkFile, col *SpanCollector) *obs.Tracer {
	if sink == nil && col == nil {
		return nil
	}
	return obs.NewTracer(id, time.Time{}, func(e obs.Event) {
		if sink != nil {
			sink.Emit(e)
		}
		col.Add(e)
	})
}

// AnnealObserver adapts anneal telemetry to the CLI surfaces: optional
// progress lines on stderr, optional JSONL anneal.sample events, and
// optional live gauges in an obs.Registry. Safe for concurrent use, so it
// can be shared by ParallelAnneal restarts; nil-field surfaces cost
// nothing.
type AnnealObserver struct {
	mu sync.Mutex

	// Progress prints one line per sample to stderr.
	Progress bool
	// Sink receives anneal.sample events (schema.go field keys).
	Sink *SinkFile

	// Registry gauges (nil unless built by NewAnnealObserver with one).
	iter, temp, current, best, acceptRate, movesPerSec *obs.Gauge
	// Evaluation-ladder introspection gauges (only move when the run
	// uses -eval-mode incremental or ladder).
	escalationRate, boundDecided, escalated *obs.Gauge
}

// NewAnnealObserver wires the requested surfaces. reg and sink may each
// be nil; progress controls stderr lines. Returns nil when every surface
// is off, which keeps the annealer on its zero-cost nil-observer path.
func NewAnnealObserver(reg *obs.Registry, sink *SinkFile, progress bool) *AnnealObserver {
	if reg == nil && sink == nil && !progress {
		return nil
	}
	ao := &AnnealObserver{Progress: progress, Sink: sink}
	if reg != nil {
		ao.iter = reg.Gauge("anneal_iterations", "Iterations completed (latest restart to report).")
		ao.temp = reg.Gauge("anneal_temperature", "Current annealing temperature.")
		ao.current = reg.Gauge("anneal_current_energy", "Current total path length.")
		ao.best = reg.Gauge("anneal_best_energy", "Best total path length so far.")
		ao.acceptRate = reg.Gauge("anneal_accept_rate", "Cumulative accepted/proposed moves.")
		ao.movesPerSec = reg.Gauge("anneal_moves_per_sec", "Iteration rate over the last interval.")
		ao.escalationRate = reg.Gauge("anneal_ladder_escalation_rate", "Fraction of candidates the sampled bound could not decide.")
		ao.boundDecided = reg.Gauge("anneal_ladder_bound_decided", "Candidates settled by the sampled bound alone (cumulative).")
		ao.escalated = reg.Gauge("anneal_ladder_escalated", "Candidates escalated to the exact rung (cumulative).")
	}
	return ao
}

// ObserveAnneal implements opt.Observer.
func (ao *AnnealObserver) ObserveAnneal(s opt.AnnealSample) {
	if ao.iter != nil {
		ao.iter.Set(float64(s.Iter))
		ao.temp.Set(s.Temp)
		ao.current.Set(float64(s.Current))
		ao.best.Set(float64(s.Best))
		ao.acceptRate.Set(s.AcceptRate())
		ao.movesPerSec.Set(s.MovesPerSec)
		if s.Eval != (opt.EvalStats{}) {
			ao.escalationRate.Set(s.Eval.EscalationRate())
			ao.boundDecided.Set(float64(s.Eval.BoundDecided))
			ao.escalated.Set(float64(s.Eval.Escalated))
		}
	}
	if ao.Sink == nil && !ao.Progress {
		return
	}
	ao.mu.Lock()
	defer ao.mu.Unlock()
	if ao.Progress {
		fmt.Fprintf(os.Stderr, "iter %8d/%d  current %12d  best %12d  accept %.3f  %.0f moves/s\n",
			s.Iter, s.Iterations, s.Current, s.Best, s.AcceptRate(), s.MovesPerSec)
	}
	if ao.Sink != nil {
		f := map[string]float64{
			"iter":            float64(s.Iter),
			"temp":            s.Temp,
			"current":         float64(s.Current),
			"best":            float64(s.Best),
			"accepted":        float64(s.Accepted),
			"proposed":        float64(s.Proposed),
			"swapAttempts":    float64(s.Moves.SwapAttempts),
			"swapAccepts":     float64(s.Moves.SwapAccepts),
			"swingAttempts":   float64(s.Moves.SwingAttempts),
			"swingAccepts":    float64(s.Moves.SwingAccepts),
			"counterAttempts": float64(s.Moves.CounterAttempts),
			"counterAccepts":  float64(s.Moves.CounterAccepts),
			"movesPerSec":     s.MovesPerSec,
			"restart":         float64(s.Restart),
		}
		if ev := s.Eval; ev != (opt.EvalStats{}) {
			f["boundDecided"] = float64(ev.BoundDecided)
			f["escalated"] = float64(ev.Escalated)
			f["unbounded"] = float64(ev.Unbounded)
			f["incSyncs"] = float64(ev.Inc.Syncs)
			f["incFullRebuilds"] = float64(ev.Inc.FullRebuilds)
			f["incPeeks"] = float64(ev.Inc.Peeks)
			f["incEstimates"] = float64(ev.Inc.Estimates)
		}
		ao.Sink.Emit(obs.Event{T: s.Elapsed, Kind: obs.KindAnnealSample, F: f})
	}
}
