package simnet

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/obs"
)

// TestFlowTracerLifecycle: a plain transfer produces a start/finish pair
// with matching ids, a copied route, and a positive latency — and tracing
// does not change the simulation outcome.
func TestFlowTracerLifecycle(t *testing.T) {
	run := func(tr *FlowTracer) *Sim {
		nw := ringNet(t, Config{})
		sim := NewSim(nw)
		sim.Tracer = tr
		sim.Spawn(0, func(p *Proc) {
			sg, err := sim.StartFlow(0, 2, 1e9)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(sg)
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim
	}
	tr := &FlowTracer{}
	traced := run(tr)
	plain := run(nil)
	if traced.Now() != plain.Now() || traced.BytesMoved != plain.BytesMoved {
		t.Fatalf("tracing perturbed the run: t=%v vs %v, bytes=%v vs %v",
			traced.Now(), plain.Now(), traced.BytesMoved, plain.BytesMoved)
	}

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want start+finish: %+v", len(evs), evs)
	}
	start, finish := evs[0], evs[1]
	if start.Kind != FlowStart || finish.Kind != FlowFinish {
		t.Fatalf("event kinds %v, %v", start.Kind, finish.Kind)
	}
	if start.ID == 0 || start.ID != finish.ID {
		t.Errorf("ids %d, %d", start.ID, finish.ID)
	}
	if start.Src != 0 || start.Dst != 2 || start.Bytes != 1e9 {
		t.Errorf("start event %+v", start)
	}
	if len(start.Route) != 4 { // h0 -> sw0 -> sw1 -> sw2 -> h2
		t.Errorf("route has %d links, want 4: %v", len(start.Route), start.Route)
	}
	if finish.Time <= start.Time {
		t.Errorf("finish at %v not after start at %v", finish.Time, start.Time)
	}
	lats := tr.Latencies()
	if len(lats) != 1 || lats[0] != finish.Time-start.Time {
		t.Errorf("latencies %v", lats)
	}
}

// TestFlowTracerRerouteAndFail: one flow survives a failure by rerouting,
// another is stranded; both show up in the timeline.
func TestFlowTracerRerouteAndFail(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	tr := &FlowTracer{}
	sim.Tracer = tr
	reg := obs.NewRegistry()
	sim.Metrics = NewSimMetrics(reg)
	if err := sim.ScheduleLinkDown(0.05, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleLinkDown(0.1, 0, 3); err != nil {
		t.Fatal(err)
	}
	sim.Spawn(0, func(p *Proc) {
		// Rerouted at t=0.05, stranded at t=0.1.
		sg, err := sim.StartFlow(0, 2, 1e9)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var kinds []FlowEventKind
	for _, e := range tr.Events() {
		kinds = append(kinds, e.Kind)
	}
	want := []FlowEventKind{FlowStart, FlowReroute, FlowFail}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds %v, want %v", kinds, want)
		}
	}
	fail := tr.Events()[2]
	if fail.Time != 0.1 || fail.Bytes <= 0 || fail.Bytes >= 1e9 {
		t.Errorf("fail event %+v: want t=0.1 with partial bytes remaining", fail)
	}
	if len(tr.Latencies()) != 0 {
		t.Error("failed flow counted as completed")
	}
	if v := sim.Metrics.Reroutes.Value(); v != 1 {
		t.Errorf("reroute counter %d, want 1", v)
	}
	if v := sim.Metrics.FlowsFailed.Value(); v != 1 {
		t.Errorf("failed counter %d, want 1", v)
	}
}

// TestSimMetricsLive: counters and the latency histogram reflect a
// completed run.
func TestSimMetricsLive(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	reg := obs.NewRegistry()
	sim.Metrics = NewSimMetrics(reg)
	sim.Spawn(0, func(p *Proc) {
		a, err := sim.StartFlow(0, 1, 1e8)
		if err != nil {
			t.Error(err)
			return
		}
		b, err := sim.StartFlow(0, 2, 1e8)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(a)
		p.Wait(b)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics
	if m.FlowsStarted.Value() != 2 || m.FlowsCompleted.Value() != 2 || m.FlowsFailed.Value() != 0 {
		t.Fatalf("counters: started=%d completed=%d failed=%d",
			m.FlowsStarted.Value(), m.FlowsCompleted.Value(), m.FlowsFailed.Value())
	}
	if m.ActiveFlows.Value() != 0 {
		t.Errorf("active flows %v after run", m.ActiveFlows.Value())
	}
	if m.SimTime.Value() <= 0 || m.BytesMoved.Value() != sim.BytesMoved {
		t.Errorf("gauges: time=%v bytes=%v (sim %v)", m.SimTime.Value(), m.BytesMoved.Value(), sim.BytesMoved)
	}
	h := m.FlowLatency.Snapshot()
	if h.Count != 2 || h.Sum <= 0 {
		t.Errorf("latency histogram count=%d sum=%v", h.Count, h.Sum)
	}
}

// TestLinkSeries: the bucketed series conserves bytes globally and
// per-link (against TrackLinkStats), and splits a steady flow across
// buckets roughly evenly.
func TestLinkSeries(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	sim.TrackLinkStats = true
	sim.EnableLinkSeries(0.05) // 1e9 B at 5 GB/s = 0.2 s = 4 buckets
	sim.Spawn(0, func(p *Proc) {
		sg, err := sim.StartFlow(0, 1, 1e9)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	series := sim.LinkSeries()
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	perLink := make([]float64, nw.NumLinks())
	for _, row := range series {
		if row == nil {
			continue
		}
		for l, b := range row {
			perLink[l] += b
		}
	}
	for l, want := range sim.linkBytes {
		if got := perLink[l]; math.Abs(got-want) > 1e-3 {
			t.Errorf("link %d: series total %v != cumulative %v", l, got, want)
		}
	}
	// The 2-hop path (h0 -> sw0 -> sw1 -> h1) drains at a constant rate, so
	// each of the 4 buckets should hold ~1/4 of the bytes on each link.
	active := 0
	for b, row := range series {
		if row == nil {
			continue
		}
		active++
		var rowSum float64
		for _, v := range row {
			rowSum += v
		}
		if rowSum <= 0 {
			t.Errorf("bucket %d empty", b)
		}
	}
	// The drain lasts 0.2 s but starts after the small latency window, so
	// it covers 4 buckets aligned or 5 when it straddles an edge.
	if active != 4 && active != 5 {
		t.Errorf("flow spread over %d buckets, want 4 or 5", active)
	}
	if sim.LinkSeriesBucket() != 0.05 {
		t.Errorf("bucket width %v", sim.LinkSeriesBucket())
	}
}

// TestHotLinks: top-k ordering over the cumulative per-link bytes.
func TestHotLinks(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	sim.TrackLinkStats = true
	sim.Spawn(0, func(p *Proc) {
		a, _ := sim.StartFlow(0, 1, 2e8)
		b, _ := sim.StartFlow(0, 1, 2e8)
		p.Wait(a)
		p.Wait(b)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	hot := sim.HotLinks(3)
	if len(hot) == 0 || len(hot) > 3 {
		t.Fatalf("got %d hot links", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Bytes > hot[i-1].Bytes {
			t.Fatalf("hot links not sorted: %+v", hot)
		}
	}
	if hot[0].Bytes != 4e8 {
		t.Errorf("hottest link carried %v, want 4e8", hot[0].Bytes)
	}
	if got := NewSim(nw).HotLinks(3); got != nil {
		t.Errorf("HotLinks without TrackLinkStats = %v, want nil", got)
	}
}

// TestFlowTracerChromeExport: the exported trace round-trips through the
// obs reader and contains a complete span per finished flow.
func TestFlowTracerChromeExport(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	tr := &FlowTracer{}
	sim.Tracer = tr
	sim.Spawn(0, func(p *Proc) {
		a, _ := sim.StartFlow(0, 1, 1e8)
		b, _ := sim.StartFlow(1, 3, 1e8)
		p.Wait(a)
		p.Wait(b)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, nw); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := 0
	counters := 0
	for _, e := range evs {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur <= 0 {
				t.Errorf("span %q has dur %v", e.Name, e.Dur)
			}
			route, ok := e.Args["route"].([]any)
			if !ok || len(route) < 2 {
				t.Errorf("span %q lacks a readable route: %v", e.Name, e.Args["route"])
			} else if hop, _ := route[0].(string); len(hop) < 4 { // "h0->s0"
				t.Errorf("span %q route hop %q not a node-pair label", e.Name, hop)
			}
		case "C":
			counters++
		}
	}
	if spans != 2 {
		t.Errorf("%d spans, want 2", spans)
	}
	if counters != 4 {
		t.Errorf("%d counter events, want 4 (2 starts + 2 finishes)", counters)
	}
}
