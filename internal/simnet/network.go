// Package simnet is a deterministic discrete-event, flow-level network
// simulator in the tradition of SimGrid's fluid model: messages are flows
// that share link bandwidth max-min fairly, recomputed on every flow
// arrival and departure. It provides the substrate for the repository's
// simulated MPI (package mpi), replacing the paper's SimGrid v3.15.
//
// A Network is built from a host-switch graph: hosts are nodes [0, n) and
// switch s is node n+s. Every physical link is modelled as two directed
// channels of the configured bandwidth. Routing is single shortest path
// with a deterministic tie-break.
package simnet

import (
	"fmt"

	"repro/internal/hsgraph"
)

// Config holds link and protocol parameters. Zero values are replaced by
// defaults matching FDR10-era InfiniBand hardware.
type Config struct {
	// BandwidthBps is per-direction link bandwidth in bytes per second.
	// Default 5e9 (40 Gb/s, InfiniBand FDR10).
	BandwidthBps float64
	// LatencyPerHop is the switching plus propagation latency of one hop
	// in seconds. Default 500e-9 (FDR-era switch traversal including
	// SerDes and cable, the system-level figure SimGrid platform files
	// of the period use).
	LatencyPerHop float64
	// MessageOverhead is a fixed per-message software overhead in seconds
	// (SimGrid's "os" parameter). Default 250e-9.
	MessageOverhead float64
	// TieBreak selects among equal-cost shortest paths.
	TieBreak TieBreak
}

// TieBreak selects the next-hop policy among equal-distance neighbours.
type TieBreak int

const (
	// LowestIndex always picks the lowest-numbered neighbour: fully
	// deterministic, matches single-shortest-path routing tables.
	LowestIndex TieBreak = iota
	// HashSpread spreads flows over equal-cost next hops by a hash of
	// (src, dst), a deterministic stand-in for ECMP.
	HashSpread
)

func (c Config) withDefaults() Config {
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 5e9
	}
	if c.LatencyPerHop == 0 {
		c.LatencyPerHop = 500e-9
	}
	if c.MessageOverhead == 0 {
		c.MessageOverhead = 250e-9
	}
	return c
}

// Network is an immutable routed network. Safe for concurrent reads.
type Network struct {
	cfg      Config
	hosts    int
	switches int

	// Directed links: link 2i is edges[i] forward, 2i+1 backward.
	// Links [0, 2*numHostLinks) are host<->switch, the rest switch<->switch.
	linkFrom []int32
	linkTo   []int32

	// outLink[u] maps neighbour node -> directed link id.
	outLink []map[int32]int32

	hostSwitch []int32   // switch node of each host (graph switch index)
	swAdj      [][]int32 // switch graph adjacency (switch indices)
	dist       [][]int16 // switch-to-switch distances
}

// NewNetwork builds the routed network for a validated host-switch graph.
func NewNetwork(g *hsgraph.Graph, cfg Config) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("simnet: %w", err)
	}
	n, m := g.Order(), g.Switches()
	nw := &Network{
		cfg:        cfg.withDefaults(),
		hosts:      n,
		switches:   m,
		outLink:    make([]map[int32]int32, n+m),
		hostSwitch: make([]int32, n),
		swAdj:      make([][]int32, m),
	}
	for v := range nw.outLink {
		nw.outLink[v] = make(map[int32]int32)
	}
	addLink := func(u, v int32) {
		id := int32(len(nw.linkFrom))
		nw.linkFrom = append(nw.linkFrom, u, v)
		nw.linkTo = append(nw.linkTo, v, u)
		nw.outLink[u][v] = id
		nw.outLink[v][u] = id + 1
	}
	for h := 0; h < n; h++ {
		s := g.SwitchOf(h)
		nw.hostSwitch[h] = int32(s)
		addLink(int32(h), int32(n+s))
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		addLink(int32(n+a), int32(n+b))
	}
	for s := 0; s < m; s++ {
		nw.swAdj[s] = append([]int32(nil), g.Neighbors(s)...)
	}
	// All-pairs switch distances by BFS.
	nw.dist = make([][]int16, m)
	queue := make([]int32, 0, m)
	for s := 0; s < m; s++ {
		d := make([]int16, m)
		for i := range d {
			d[i] = -1
		}
		d[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range nw.swAdj[v] {
				if d[u] == -1 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
		nw.dist[s] = d
	}
	return nw, nil
}

// Hosts returns the number of hosts.
func (nw *Network) Hosts() int { return nw.hosts }

// Switches returns the number of switches.
func (nw *Network) Switches() int { return nw.switches }

// NumLinks returns the number of directed links.
func (nw *Network) NumLinks() int { return len(nw.linkFrom) }

// NodeName renders a node id (hosts [0,n), switch s at n+s) as "h<i>" or
// "s<i>" for human-readable link labels.
func (nw *Network) NodeName(id int) string {
	if id < nw.hosts {
		return fmt.Sprintf("h%d", id)
	}
	return fmt.Sprintf("s%d", id-nw.hosts)
}

// Config returns the effective (defaulted) configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Route returns the directed link ids of the path from host src to host
// dst. It returns nil for src == dst and an error when unreachable.
func (nw *Network) Route(src, dst int) ([]int32, error) {
	return nw.routeOn(src, dst, nw.swAdj, nw.dist)
}

// routeOn routes over an explicit switch adjacency and distance matrix, so
// a Sim carrying private failure state (see fail.go) can reroute without
// touching the shared immutable Network.
func (nw *Network) routeOn(src, dst int, adj [][]int32, dist [][]int16) ([]int32, error) {
	if src < 0 || src >= nw.hosts || dst < 0 || dst >= nw.hosts {
		return nil, fmt.Errorf("simnet: host pair (%d,%d) out of range", src, dst)
	}
	if src == dst {
		return nil, nil
	}
	s1, s2 := nw.hostSwitch[src], nw.hostSwitch[dst]
	n := nw.hosts
	path := make([]int32, 0, 8)
	path = append(path, nw.outLink[src][int32(n)+s1])
	cur := s1
	for cur != s2 {
		next, err := nw.nextHopOn(cur, s2, src, dst, adj, dist)
		if err != nil {
			return nil, err
		}
		path = append(path, nw.outLink[int32(n)+cur][int32(n)+next])
		cur = next
	}
	path = append(path, nw.outLink[int32(n)+s2][int32(dst)])
	return path, nil
}

// nextHopOn picks the neighbour of cur one step closer to goal under the
// given adjacency and distances.
func (nw *Network) nextHopOn(cur, goal int32, src, dst int, adj [][]int32, dist [][]int16) (int32, error) {
	d := dist[goal]
	if d[cur] <= 0 {
		return 0, fmt.Errorf("simnet: no route from switch %d to switch %d", cur, goal)
	}
	want := d[cur] - 1
	switch nw.cfg.TieBreak {
	case HashSpread:
		var candidates []int32
		for _, u := range adj[cur] {
			if d[u] == want {
				candidates = append(candidates, u)
			}
		}
		if len(candidates) == 0 {
			return 0, fmt.Errorf("simnet: routing table hole at switch %d", cur)
		}
		h := uint32(src)*2654435761 ^ uint32(dst)*40503 ^ uint32(cur)*97
		return candidates[h%uint32(len(candidates))], nil
	default: // LowestIndex
		best := int32(-1)
		for _, u := range adj[cur] {
			if d[u] == want && (best == -1 || u < best) {
				best = u
			}
		}
		if best == -1 {
			return 0, fmt.Errorf("simnet: routing table hole at switch %d", cur)
		}
		return best, nil
	}
}

// Hops returns the number of links on the route between two hosts
// (0 for src == dst).
func (nw *Network) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	s1, s2 := nw.hostSwitch[src], nw.hostSwitch[dst]
	return int(nw.dist[s1][s2]) + 2
}
