package simnet

import (
	"math"
	"testing"

	"repro/internal/hsgraph"
)

// ringNet builds a 4-switch ring with one host per switch.
func ringNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	g := hsgraph.New(4, 4, 4)
	for h := 0; h < 4; h++ {
		if err := g.AttachHost(h, h); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 4; s++ {
		if err := g.Connect(s, (s+1)%4); err != nil {
			t.Fatal(err)
		}
	}
	nw, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestLinkDownReroutesFlow: a flow crossing a failed link moves its
// remaining bytes over the longer surviving path, visible in the per-link
// byte accounting.
func TestLinkDownReroutesFlow(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	sim.TrackLinkStats = true
	if err := sim.ScheduleLinkDown(0.1, 0, 1); err != nil {
		t.Fatal(err)
	}
	sim.Spawn(0, func(p *Proc) {
		sg, err := sim.StartFlow(0, 1, 1e9) // 0.2 s at 5 GB/s
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.FlowsFailed != 0 {
		t.Fatalf("flow reported failed: %d", sim.FlowsFailed)
	}
	if math.IsInf(sim.Now(), 1) || sim.Now() <= 0 {
		t.Fatal("rerouted transfer never completed")
	}
	// Hosts are nodes 0..3, switch s is node 4+s. Roughly half the bytes
	// cross switch0->switch1 before the failure; the rest detour via
	// switch3->switch2 (route 0 -> sw0 -> sw3 -> sw2 -> sw1 -> 1).
	load := func(from, to int) float64 {
		for _, l := range sim.LinkLoads() {
			if l.From == from && l.To == to {
				return l.Bytes
			}
		}
		t.Fatalf("no link %d->%d", from, to)
		return 0
	}
	direct := load(4, 5)
	detour := load(7, 6)
	if direct <= 0.4e9 || direct >= 0.6e9 {
		t.Fatalf("pre-failure leg carried %.3g bytes, want ~0.5e9", direct)
	}
	if detour <= 0.4e9 || detour >= 0.6e9 {
		t.Fatalf("detour leg carried %.3g bytes, want ~0.5e9", detour)
	}
	if got := direct + detour; got <= 0.9e9 || got >= 1.1e9 {
		t.Fatalf("legs carried %.3g bytes total, want ~1e9", got)
	}
}

// TestLinkDownUnreachableFails: cutting both paths strands the flow, the
// signal still fires, and FlowsFailed counts it.
func TestLinkDownUnreachableFails(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	if err := sim.ScheduleLinkDown(0.05, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleLinkDown(0.1, 0, 3); err != nil {
		t.Fatal(err)
	}
	completed := false
	sim.Spawn(0, func(p *Proc) {
		sg, err := sim.StartFlow(0, 2, 1e9)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg) // must not deadlock
		completed = true
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("waiter never resumed")
	}
	if sim.FlowsFailed != 1 {
		t.Fatalf("FlowsFailed = %d, want 1", sim.FlowsFailed)
	}
	if !sim.LinkIsDown(0, 1) || !sim.LinkIsDown(1, 0) || sim.LinkIsDown(1, 2) {
		t.Fatal("LinkIsDown inconsistent")
	}
}

// TestLinkDownValidation: bad schedules are rejected; the Network stays
// pristine for other Sims sharing it.
func TestLinkDownValidation(t *testing.T) {
	nw := ringNet(t, Config{})
	sim := NewSim(nw)
	if err := sim.ScheduleLinkDown(0, 0, 2); err == nil {
		t.Fatal("accepted nonexistent link")
	}
	if err := sim.ScheduleLinkDown(0, 0, 9); err == nil {
		t.Fatal("accepted out-of-range switch")
	}
	if err := sim.ScheduleLinkDown(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	sim.Spawn(0, func(p *Proc) { p.Sleep(1) })
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// A second Sim over the same Network must see the pristine topology.
	other := NewSim(nw)
	done := false
	other.Spawn(0, func(p *Proc) {
		sg, err := other.StartFlow(0, 1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
		done = true
	})
	if err := other.Run(); err != nil {
		t.Fatal(err)
	}
	// Direct route 0->1 is 3 hops (host,switch,host links); with the
	// pristine network the transfer is fast and unfailed.
	if !done || other.FlowsFailed != 0 {
		t.Fatal("shared Network polluted by another Sim's failures")
	}
}

// TestLinkDownPacketMode: packets launched after the failure use the
// surviving path.
func TestLinkDownPacketMode(t *testing.T) {
	nw := ringNet(t, Config{})
	run := func(fail bool) float64 {
		sim := NewSim(nw)
		if fail {
			if err := sim.ScheduleLinkDown(0, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		sim.Spawn(0, func(p *Proc) {
			p.Sleep(0.001) // let the failure event land first
			sg, err := sim.StartPacketMessage(0, 1, 64*1024, 0)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(sg)
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Now()
	}
	if failTime, cleanTime := run(true), run(false); failTime <= cleanTime {
		t.Fatalf("packet message ignored failure: %.9f vs %.9f", failTime, cleanTime)
	}
}
