package simnet

import (
	"fmt"
	"sort"
)

// Link failures. A Network is immutable and may be shared by many Sims, so
// failure state lives in the Sim as a copy-on-write view of the switch
// graph: the first ScheduleLinkDown clones the adjacency, and every
// failure recomputes the private distance matrix. Routing (fluid flows and
// packet messages alike) resolves paths against this view.
//
// Failure semantics: when a link goes down, in-flight fluid flows crossing
// it are rerouted over the surviving fabric and keep their remaining
// bytes (the extra path latency is not re-paid — the fluid model already
// abstracts per-packet latency away mid-transfer). Flows whose destination
// becomes unreachable complete immediately as failed: their completion
// signal fires so blocked processes do not deadlock, and FlowsFailed
// counts them. In-flight packets (packet mode) keep the path they were
// launched on; only packets sent after the failure see the new routes.
type failState struct {
	adj  [][]int32 // private switch adjacency, downed links removed
	dist [][]int16 // private all-pairs switch distances
	down map[int32]bool
}

// route resolves a host-to-host path under the sim's failure view (the
// pristine network when nothing has failed).
func (s *Sim) route(src, dst int) ([]int32, error) {
	if s.fail == nil {
		return s.net.Route(src, dst)
	}
	return s.net.routeOn(src, dst, s.fail.adj, s.fail.dist)
}

// LinkIsDown reports whether the switch-switch link {a, b} has failed.
func (s *Sim) LinkIsDown(a, b int) bool {
	if s.fail == nil {
		return false
	}
	n := s.net.hosts
	id, ok := s.net.outLink[int32(n+a)][int32(n+b)]
	return ok && s.fail.down[id]
}

// ScheduleLinkDown arranges for the switch-switch link {a, b} to fail at
// absolute simulated time at (>= now). The link must exist in the
// network; failing it twice is a no-op. Call before or during Run.
func (s *Sim) ScheduleLinkDown(at float64, a, b int) error {
	m := s.net.switches
	if a < 0 || a >= m || b < 0 || b >= m || a == b {
		return fmt.Errorf("simnet: switch pair (%d,%d) out of range", a, b)
	}
	n := s.net.hosts
	if _, ok := s.net.outLink[int32(n+a)][int32(n+b)]; !ok {
		return fmt.Errorf("simnet: no link between switches %d and %d", a, b)
	}
	if at < s.now {
		return fmt.Errorf("simnet: link-down time %v is in the past (now %v)", at, s.now)
	}
	s.after(at-s.now, func() { s.linkDown(int32(a), int32(b)) })
	return nil
}

// linkDown applies the failure: updates the private topology view, then
// reroutes or fails the active flows that crossed the link.
func (s *Sim) linkDown(a, b int32) {
	if s.fail == nil {
		adj := make([][]int32, len(s.net.swAdj))
		for i, ns := range s.net.swAdj {
			adj[i] = append([]int32(nil), ns...)
		}
		s.fail = &failState{adj: adj, down: make(map[int32]bool)}
	}
	n := int32(s.net.hosts)
	fwd := s.net.outLink[n+a][n+b]
	if s.fail.down[fwd] {
		return
	}
	s.fail.down[fwd] = true
	s.fail.down[s.net.outLink[n+b][n+a]] = true
	removeNeighborSw(&s.fail.adj[a], b)
	removeNeighborSw(&s.fail.adj[b], a)
	s.recomputeFailDist()

	// Reroute affected flows in id order so the outcome (including the
	// firing order of failed flows' signals) is deterministic.
	var affected []int64
	for id, f := range s.flows {
		for _, l := range f.links {
			if s.fail.down[l] {
				affected = append(affected, id)
				break
			}
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	for _, id := range affected {
		f := s.flows[id]
		links, err := s.route(f.src, f.dst)
		if err != nil {
			delete(s.flows, id)
			s.FlowsFailed++
			s.Tracer.record(FlowEvent{Kind: FlowFail, Time: s.now, ID: f.id, Src: f.src, Dst: f.dst, Bytes: f.remaining})
			s.Metrics.flowEnded(s, nil, true)
			s.fire(f.done)
			continue
		}
		f.links = links
		if s.Tracer != nil {
			s.Tracer.record(FlowEvent{Kind: FlowReroute, Time: s.now, ID: f.id, Src: f.src, Dst: f.dst,
				Bytes: f.remaining, Route: append([]int32(nil), links...)})
		}
		if s.Metrics != nil {
			s.Metrics.Reroutes.Inc()
		}
	}
	if len(affected) > 0 {
		s.ratesDirty = true
	}
}

// recomputeFailDist rebuilds the private distance matrix by BFS.
func (s *Sim) recomputeFailDist() {
	m := s.net.switches
	if s.fail.dist == nil {
		s.fail.dist = make([][]int16, m)
		for i := range s.fail.dist {
			s.fail.dist[i] = make([]int16, m)
		}
	}
	queue := make([]int32, 0, m)
	for src := 0; src < m; src++ {
		d := s.fail.dist[src]
		for i := range d {
			d[i] = -1
		}
		d[src] = 0
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range s.fail.adj[v] {
				if d[u] == -1 {
					d[u] = d[v] + 1
					queue = append(queue, u)
				}
			}
		}
	}
}

func removeNeighborSw(adj *[]int32, v int32) {
	a := *adj
	for i, u := range a {
		if u == v {
			a[i] = a[len(a)-1]
			*adj = a[:len(a)-1]
			return
		}
	}
	panic("simnet: failure view inconsistent with network")
}
