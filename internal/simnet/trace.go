package simnet

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/obs"
)

// Flow-level observability: a FlowTracer records every flow's lifecycle
// (start, reroute on link failure, finish, fail) at simulated timestamps
// and exports the timeline as Chrome trace_event JSON; EnableLinkSeries
// adds time-bucketed per-link byte accounting on top of the cumulative
// TrackLinkStats totals; SimMetrics publishes live counters into an
// obs.Registry for scraping while a simulation runs. All of it is
// strictly passive — tracing never consumes randomness, schedules events
// or perturbs rate allocation, so a traced run is bit-identical to an
// untraced one.

// FlowEventKind classifies FlowTracer records.
type FlowEventKind int

// Flow lifecycle kinds.
const (
	// FlowStart: the flow began carrying bytes (after the latency window).
	FlowStart FlowEventKind = iota
	// FlowReroute: a link failure moved the flow onto a new path.
	FlowReroute
	// FlowFinish: the flow delivered all its bytes.
	FlowFinish
	// FlowFail: a failure made the destination unreachable; the flow was
	// terminated with Bytes still undelivered.
	FlowFail
)

func (k FlowEventKind) String() string {
	switch k {
	case FlowStart:
		return "start"
	case FlowReroute:
		return "reroute"
	case FlowFinish:
		return "finish"
	case FlowFail:
		return "fail"
	}
	return fmt.Sprintf("FlowEventKind(%d)", int(k))
}

// FlowEvent is one flow lifecycle record.
type FlowEvent struct {
	Kind FlowEventKind
	// Time is the simulated time of the event in seconds.
	Time float64
	// ID is the simulator-assigned flow id. It is 0 for flows that failed
	// during their latency window, before ever carrying bytes.
	ID       int64
	Src, Dst int // host ids
	// Bytes is the transfer size at FlowStart, the bytes still undelivered
	// at FlowReroute/FlowFail, and 0 at FlowFinish.
	Bytes float64
	// Route is the directed-link path (start and reroute events only).
	Route []int32
}

// FlowTracer records flow lifecycle events. Attach one via Sim.Tracer
// before Run; the scheduler is single-threaded, so no locking is needed.
type FlowTracer struct {
	events []FlowEvent
}

// record appends an event (no-op on a nil tracer).
func (t *FlowTracer) record(e FlowEvent) {
	if t == nil {
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded timeline in the order it happened.
func (t *FlowTracer) Events() []FlowEvent { return t.events }

// Latencies returns the start-to-finish duration of every completed flow,
// in event order. Failed and still-open flows are excluded.
func (t *FlowTracer) Latencies() []float64 {
	starts := make(map[int64]float64)
	var out []float64
	for _, e := range t.events {
		switch e.Kind {
		case FlowStart:
			starts[e.ID] = e.Time
		case FlowFinish:
			if s, ok := starts[e.ID]; ok {
				out = append(out, e.Time-s)
				delete(starts, e.ID)
			}
		}
	}
	return out
}

// ChromeEvents converts the timeline to Chrome trace_event records: one
// thread row per source host, a complete span ("X") per finished flow, an
// instant per reroute/failure, and a counter track of concurrently active
// flows. Timestamps are microseconds of simulated time. When nw is
// non-nil, each span's args carry the flow's final route as readable
// "a->b" hop names so consumers (cmd/orptrace) can aggregate per-link
// bytes without the network file; with a nil nw routes are omitted.
func (t *FlowTracer) ChromeEvents(nw *Network) []obs.TraceEvent {
	const pid = 0
	evs := []obs.TraceEvent{obs.MetadataEvent("process_name", pid, 0, "simnet flows")}
	hostsSeen := make(map[int]bool)
	row := func(host int) int {
		if !hostsSeen[host] {
			hostsSeen[host] = true
			evs = append(evs, obs.MetadataEvent("thread_name", pid, host, fmt.Sprintf("host %d", host)))
		}
		return host
	}
	routeNames := func(links []int32) []string {
		if nw == nil || len(links) == 0 {
			return nil
		}
		out := make([]string, len(links))
		for i, l := range links {
			out[i] = fmt.Sprintf("%s->%s", nw.NodeName(int(nw.linkFrom[l])), nw.NodeName(int(nw.linkTo[l])))
		}
		return out
	}
	type open struct {
		at    float64
		bytes float64
		hops  int
		route []string
	}
	opens := make(map[int64]open)
	active := 0
	counter := func(at float64) obs.TraceEvent {
		return obs.TraceEvent{Name: "active flows", Ph: "C", Ts: at * 1e6, Pid: pid,
			Args: map[string]any{"flows": active}}
	}
	for _, e := range t.events {
		ts := e.Time * 1e6
		switch e.Kind {
		case FlowStart:
			opens[e.ID] = open{at: e.Time, bytes: e.Bytes, hops: len(e.Route), route: routeNames(e.Route)}
			active++
			evs = append(evs, counter(e.Time))
		case FlowReroute:
			if o, ok := opens[e.ID]; ok {
				o.hops = len(e.Route)
				o.route = routeNames(e.Route)
				opens[e.ID] = o
			}
			evs = append(evs, obs.TraceEvent{
				Name: fmt.Sprintf("reroute flow %d", e.ID), Cat: "flow", Ph: "i",
				Ts: ts, Pid: pid, Tid: row(e.Src), S: "t",
				Args: map[string]any{"dst": e.Dst, "remaining": e.Bytes, "hops": len(e.Route)},
			})
		case FlowFinish, FlowFail:
			name := fmt.Sprintf("flow %d: h%d->h%d", e.ID, e.Src, e.Dst)
			if o, ok := opens[e.ID]; ok {
				delete(opens, e.ID)
				active--
				if e.Kind == FlowFail {
					name = "FAILED " + name
				}
				args := map[string]any{"bytes": o.bytes, "hops": o.hops, "undelivered": e.Bytes}
				if o.route != nil {
					args["route"] = o.route
				}
				evs = append(evs, obs.TraceEvent{
					Name: name, Cat: "flow", Ph: "X",
					Ts: o.at * 1e6, Dur: (e.Time - o.at) * 1e6, Pid: pid, Tid: row(e.Src),
					Args: args,
				})
				evs = append(evs, counter(e.Time))
			} else {
				// Failed before carrying bytes (latency-window failure).
				evs = append(evs, obs.TraceEvent{
					Name: fmt.Sprintf("FAILED flow h%d->h%d (unroutable)", e.Src, e.Dst),
					Cat:  "flow", Ph: "i", Ts: ts, Pid: pid, Tid: row(e.Src), S: "t",
					Args: map[string]any{"bytes": e.Bytes},
				})
			}
		}
	}
	return evs
}

// WriteChromeTrace writes the timeline as a chrome://tracing-loadable
// trace_event JSON array. nw (optional) adds readable routes to the
// spans; see ChromeEvents.
func (t *FlowTracer) WriteChromeTrace(w io.Writer, nw *Network) error {
	return obs.WriteChromeTrace(w, t.ChromeEvents(nw))
}

// SimMetrics publishes live simulator state into an obs.Registry so a
// metrics endpoint can be scraped while a simulation runs. Attach via
// Sim.Metrics before Run. All instruments are updated from the (single)
// scheduler goroutine; scrapes read them atomically.
type SimMetrics struct {
	FlowsStarted   *obs.Counter
	FlowsCompleted *obs.Counter
	FlowsFailed    *obs.Counter
	Reroutes       *obs.Counter
	ActiveFlows    *obs.Gauge
	SimTime        *obs.Gauge
	BytesMoved     *obs.Gauge
	// FlowLatency is the start-to-finish duration of completed flows, in
	// simulated seconds (1µs .. ~8s exponential buckets).
	FlowLatency *obs.Histogram
}

// NewSimMetrics registers the simnet instrument set in r.
func NewSimMetrics(r *obs.Registry) *SimMetrics {
	return &SimMetrics{
		FlowsStarted:   r.Counter("simnet_flows_started_total", "Flows that began carrying bytes."),
		FlowsCompleted: r.Counter("simnet_flows_completed_total", "Flows that delivered all bytes."),
		FlowsFailed:    r.Counter("simnet_flows_failed_total", "Flows terminated by link failures."),
		Reroutes:       r.Counter("simnet_flow_reroutes_total", "In-flight flows moved to a new path by a link failure."),
		ActiveFlows:    r.Gauge("simnet_active_flows", "Flows currently carrying bytes."),
		SimTime:        r.Gauge("simnet_time_seconds", "Current simulated time."),
		BytesMoved:     r.Gauge("simnet_bytes_moved", "Total bytes delivered so far."),
		FlowLatency:    r.Histogram("simnet_flow_latency_seconds", "Start-to-finish duration of completed flows (simulated seconds).", obs.ExpBuckets(1e-6, 2, 24)),
	}
}

// flowStarted/flowEnded update the live instruments (nil-safe).
func (m *SimMetrics) flowStarted(s *Sim) {
	if m == nil {
		return
	}
	m.FlowsStarted.Inc()
	m.ActiveFlows.Set(float64(len(s.flows)))
	m.SimTime.Set(s.now)
}

func (m *SimMetrics) flowEnded(s *Sim, f *flow, failed bool) {
	if m == nil {
		return
	}
	if failed {
		m.FlowsFailed.Inc()
	} else {
		m.FlowsCompleted.Inc()
		if f != nil {
			m.FlowLatency.Observe(s.now - f.started)
		}
	}
	m.ActiveFlows.Set(float64(len(s.flows)))
	m.SimTime.Set(s.now)
	m.BytesMoved.Set(s.BytesMoved)
}

// EnableLinkSeries turns on time-bucketed per-link byte accounting:
// every drained byte is attributed to the directed link(s) it crossed and
// the time bucket(s) it moved in, proportionally when a drain interval
// straddles a bucket edge. Must be called before Run. The per-bucket rows
// are allocated lazily, so idle tails cost nothing.
func (s *Sim) EnableLinkSeries(bucketSeconds float64) {
	if bucketSeconds <= 0 {
		panic("simnet: link-series bucket width must be positive")
	}
	s.seriesBucket = bucketSeconds
}

// LinkSeriesBucket returns the configured bucket width (0 when disabled).
func (s *Sim) LinkSeriesBucket() float64 { return s.seriesBucket }

// LinkSeries returns the recorded series: series[b][l] is the bytes link l
// carried during [b*bucket, (b+1)*bucket). Rows of buckets in which
// nothing moved are nil. The returned slices are the simulator's own;
// treat them as read-only.
func (s *Sim) LinkSeries() [][]float64 { return s.series }

// addSeries attributes moved bytes, drained over [now, now+dt), to the
// bucketed series of every link on the path.
func (s *Sim) addSeries(links []int32, moved, dt float64) {
	t0, t1 := s.now, s.now+dt
	b := int(t0 / s.seriesBucket)
	for t0 < t1 {
		edge := float64(b+1) * s.seriesBucket
		seg := math.Min(edge, t1) - t0
		if seg > 0 {
			for b >= len(s.series) {
				s.series = append(s.series, nil)
			}
			if s.series[b] == nil {
				s.series[b] = make([]float64, s.net.NumLinks())
			}
			row := s.series[b]
			share := moved * seg / dt
			for _, l := range links {
				row[l] += share
			}
		}
		t0 = edge
		b++
	}
}

// HotLinks returns the k directed links that carried the most bytes, in
// decreasing order (requires TrackLinkStats; returns nil otherwise).
// Links that carried nothing are omitted.
func (s *Sim) HotLinks(k int) []LinkLoad {
	if s.linkBytes == nil || k <= 0 {
		return nil
	}
	loads := s.LinkLoads()
	sort.Slice(loads, func(i, j int) bool { return loads[i].Bytes > loads[j].Bytes })
	n := 0
	for n < len(loads) && n < k && loads[n].Bytes > 0 {
		n++
	}
	return loads[:n]
}
