package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Sim is a deterministic discrete-event simulator over a Network with
// cooperatively scheduled processes. Exactly one process goroutine runs at
// a time; events are processed in (time, sequence) order, so a given
// program always produces the same timings.
type Sim struct {
	net *Network
	now float64

	events  eventHeap
	eventSq int64

	flows      map[int64]*flow
	nextFlowID int64
	ratesDirty bool
	// max-min scratch (lazily sized to the link count)
	linkFree   []float64
	linkCount  []int32
	touchedBuf []int32

	procs   []*Proc
	readyQ  []*Proc
	yielded chan struct{}

	// Stats
	FlowsCompleted int64
	// FlowsFailed counts flows terminated because a link failure made
	// their destination unreachable (see fail.go). Their completion
	// signals still fire so waiting processes do not deadlock.
	FlowsFailed int64
	BytesMoved  float64

	fail *failState // private link-failure view; nil while nothing failed

	// TrackLinkStats enables per-link byte accounting (off by default:
	// it adds O(path length) work to every drain step). Set before Run.
	TrackLinkStats bool
	linkBytes      []float64

	// Tracer, when non-nil, records every flow's lifecycle (see trace.go).
	// Set before Run.
	Tracer *FlowTracer
	// Metrics, when non-nil, receives live counter/gauge/histogram updates
	// as the simulation runs (see SimMetrics). Set before Run.
	Metrics *SimMetrics
	// Time-bucketed link series (see EnableLinkSeries).
	seriesBucket float64
	series       [][]float64

	// linkFreeAt is the packet-mode per-link FIFO horizon (see packet.go).
	linkFreeAt []float64
}

// Signal is a one-shot condition processes can wait on.
type Signal struct {
	fired   bool
	waiters []*Proc
	chained []*Signal
}

// Fired reports whether the signal has fired.
func (sg *Signal) Fired() bool { return sg.fired }

type flow struct {
	id        int64
	src, dst  int
	links     []int32
	remaining float64
	rate      float64
	done      *Signal
	started   float64 // sim time at which the flow began carrying bytes
}

type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// Proc is a simulated process pinned to a host. Its body runs in its own
// goroutine but only while the scheduler has handed it control; all
// blocking goes through Wait/Sleep.
type Proc struct {
	ID     int
	Host   int
	sim    *Sim
	resume chan struct{}
	done   bool
	failed error
}

// NewSim creates a simulator for the network.
func NewSim(net *Network) *Sim {
	return &Sim{
		net:     net,
		flows:   make(map[int64]*flow),
		yielded: make(chan struct{}),
	}
}

// Now returns the current simulated time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Network returns the underlying network.
func (s *Sim) Network() *Network { return s.net }

// Spawn registers a process bound to a host. Must be called before Run.
func (s *Sim) Spawn(host int, body func(p *Proc)) *Proc {
	if host < 0 || host >= s.net.Hosts() {
		panic(fmt.Sprintf("simnet: spawn on host %d of %d", host, s.net.Hosts()))
	}
	p := &Proc{ID: len(s.procs), Host: host, sim: s, resume: make(chan struct{})}
	s.procs = append(s.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.failed = fmt.Errorf("simnet: process %d panicked: %v", p.ID, r)
			}
			p.done = true
			s.yielded <- struct{}{}
		}()
		body(p)
	}()
	s.readyQ = append(s.readyQ, p)
	return p
}

// Run executes until every process finishes. It returns an error on
// deadlock (processes blocked with no pending events) or process panic.
func (s *Sim) Run() error {
	for {
		if len(s.readyQ) > 0 {
			p := s.readyQ[0]
			s.readyQ = s.readyQ[1:]
			p.resume <- struct{}{}
			<-s.yielded
			if p.failed != nil {
				return p.failed
			}
			continue
		}
		allDone := true
		for _, p := range s.procs {
			if !p.done {
				allDone = false
				break
			}
		}
		if allDone {
			return nil
		}
		if err := s.advance(); err != nil {
			return err
		}
	}
}

// advance moves time to the next event (timer or flow completion) and
// handles it.
func (s *Sim) advance() error {
	if s.ratesDirty {
		s.recomputeRates()
	}
	tFlow, flowIDs := s.nextFlowCompletion()
	tTimer := math.Inf(1)
	if len(s.events) > 0 {
		tTimer = s.events.peek().at
	}
	t := math.Min(tFlow, tTimer)
	if math.IsInf(t, 1) {
		blocked := 0
		for _, p := range s.procs {
			if !p.done {
				blocked++
			}
		}
		return fmt.Errorf("simnet: deadlock at t=%.9f: %d processes blocked with no pending events", s.now, blocked)
	}
	s.drainFlows(t - s.now)
	s.now = t
	if tFlow <= tTimer {
		for _, id := range flowIDs {
			f := s.flows[id]
			delete(s.flows, id)
			s.FlowsCompleted++
			s.ratesDirty = true
			s.Tracer.record(FlowEvent{Kind: FlowFinish, Time: s.now, ID: f.id, Src: f.src, Dst: f.dst})
			s.Metrics.flowEnded(s, f, false)
			s.fire(f.done)
		}
		return nil
	}
	// Drain every timer event scheduled for this instant in one pass so the
	// (expensive) rate recomputation runs once per timestamp, not once per
	// event — synchronized collectives produce large same-time batches.
	e := heap.Pop(&s.events).(event)
	e.fn()
	for len(s.events) > 0 && s.events.peek().at == t {
		e := heap.Pop(&s.events).(event)
		e.fn()
	}
	return nil
}

// drainFlows transfers dt seconds of data on every active flow.
func (s *Sim) drainFlows(dt float64) {
	if dt <= 0 {
		return
	}
	for _, f := range s.flows {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		s.BytesMoved += moved
		if s.TrackLinkStats {
			if s.linkBytes == nil {
				s.linkBytes = make([]float64, s.net.NumLinks())
			}
			for _, l := range f.links {
				s.linkBytes[l] += moved
			}
		}
		if s.seriesBucket > 0 && moved > 0 {
			s.addSeries(f.links, moved, dt)
		}
	}
}

// LinkLoad reports the bytes carried by one directed link.
type LinkLoad struct {
	From, To int // node ids: hosts [0,n), switch s at n+s
	Bytes    float64
}

// LinkLoads returns per-directed-link transferred bytes (requires
// TrackLinkStats). Links are returned in link-id order.
func (s *Sim) LinkLoads() []LinkLoad {
	out := make([]LinkLoad, s.net.NumLinks())
	for l := range out {
		out[l] = LinkLoad{From: int(s.net.linkFrom[l]), To: int(s.net.linkTo[l])}
		if s.linkBytes != nil {
			out[l].Bytes = s.linkBytes[l]
		}
	}
	return out
}

// LinkLoadSummary returns the maximum and mean bytes over all directed
// links that carried any traffic.
func (s *Sim) LinkLoadSummary() (maxBytes, meanBytes float64) {
	if s.linkBytes == nil {
		return 0, 0
	}
	var sum float64
	active := 0
	for _, b := range s.linkBytes {
		if b > maxBytes {
			maxBytes = b
		}
		if b > 0 {
			sum += b
			active++
		}
	}
	if active > 0 {
		meanBytes = sum / float64(active)
	}
	return maxBytes, meanBytes
}

// nextFlowCompletion returns the earliest completion time among active
// flows and the ids of all flows completing then (within tolerance).
func (s *Sim) nextFlowCompletion() (float64, []int64) {
	t := math.Inf(1)
	for _, f := range s.flows {
		if f.rate <= 0 {
			continue
		}
		ft := s.now + f.remaining/f.rate
		if ft < t {
			t = ft
		}
	}
	if math.IsInf(t, 1) {
		return t, nil
	}
	const eps = 1e-15
	var ids []int64
	for id, f := range s.flows {
		if f.rate <= 0 {
			continue
		}
		if s.now+f.remaining/f.rate <= t+eps {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return t, ids
}

// recomputeRates runs progressive-filling max-min fair allocation over all
// active flows using flat per-link arrays (this is the simulator's hot
// path).
func (s *Sim) recomputeRates() {
	s.ratesDirty = false
	if len(s.flows) == 0 {
		return
	}
	active := make([]*flow, 0, len(s.flows))
	for _, f := range s.flows {
		active = append(active, f)
	}
	sort.Slice(active, func(i, j int) bool { return active[i].id < active[j].id })

	cap_ := s.net.cfg.BandwidthBps
	if s.linkFree == nil {
		s.linkFree = make([]float64, s.net.NumLinks())
		s.linkCount = make([]int32, s.net.NumLinks())
	}
	touched := s.touchedBuf[:0]
	for _, f := range active {
		f.rate = -1
		for _, l := range f.links {
			if s.linkCount[l] == 0 {
				s.linkFree[l] = cap_
				touched = append(touched, l)
			}
			s.linkCount[l]++
		}
	}
	unset := len(active)
	for unset > 0 {
		share := math.Inf(1)
		for _, l := range touched {
			if s.linkCount[l] == 0 {
				continue
			}
			if sh := s.linkFree[l] / float64(s.linkCount[l]); sh < share {
				share = sh
			}
		}
		if math.IsInf(share, 1) {
			for _, f := range active {
				if f.rate < 0 {
					f.rate = cap_
				}
			}
			break
		}
		limit := share * (1 + 1e-12)
		froze := 0
		for _, f := range active {
			if f.rate >= 0 {
				continue
			}
			bottled := false
			for _, l := range f.links {
				if c := s.linkCount[l]; c > 0 && s.linkFree[l]/float64(c) <= limit {
					bottled = true
					break
				}
			}
			if !bottled {
				continue
			}
			f.rate = share
			froze++
			for _, l := range f.links {
				s.linkFree[l] -= share
				if s.linkFree[l] < 0 {
					s.linkFree[l] = 0
				}
				s.linkCount[l]--
			}
		}
		unset -= froze
		if froze == 0 {
			// Numerical stalemate: assign the remaining flows the current
			// share to guarantee termination.
			for _, f := range active {
				if f.rate < 0 {
					f.rate = share
					unset--
				}
			}
		}
	}
	// Reset counters for the next invocation (free slots are lazily
	// reinitialised via linkCount == 0).
	for _, l := range touched {
		s.linkCount[l] = 0
	}
	s.touchedBuf = touched[:0]
}

// after schedules fn at now+delay.
func (s *Sim) after(delay float64, fn func()) {
	s.eventSq++
	heap.Push(&s.events, event{at: s.now + delay, seq: s.eventSq, fn: fn})
}

// fire marks a signal fired, readies its waiters, and fires any chained
// signals.
func (s *Sim) fire(sg *Signal) {
	if sg == nil || sg.fired {
		return
	}
	sg.fired = true
	for _, p := range sg.waiters {
		s.readyQ = append(s.readyQ, p)
	}
	sg.waiters = nil
	for _, c := range sg.chained {
		s.fire(c)
	}
	sg.chained = nil
}

// Chain arranges for `to` to fire when `from` fires (immediately if it
// already has).
func (s *Sim) Chain(from, to *Signal) {
	if from.fired {
		s.fire(to)
		return
	}
	from.chained = append(from.chained, to)
}

// NewSignal returns an unfired signal.
func (s *Sim) NewSignal() *Signal { return &Signal{} }

// FireAt fires the signal at the given delay from now.
func (s *Sim) FireAt(sg *Signal, delay float64) {
	s.after(delay, func() { s.fire(sg) })
}

// StartFlow begins a transfer of the given number of bytes from host src
// to host dst and returns a signal that fires on completion. A transfer
// first pays the per-message overhead plus per-hop latency, then shares
// bandwidth max-min fairly with all concurrent flows on its path.
// src == dst transfers fire after the message overhead alone.
func (s *Sim) StartFlow(src, dst int, bytes float64) (*Signal, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("simnet: negative transfer size %v", bytes)
	}
	sg := s.NewSignal()
	cfg := s.net.cfg
	if src == dst {
		s.FireAt(sg, cfg.MessageOverhead)
		return sg, nil
	}
	links, err := s.route(src, dst)
	if err != nil {
		return nil, err
	}
	delay := cfg.MessageOverhead + float64(len(links))*cfg.LatencyPerHop
	s.after(delay, func() {
		if bytes == 0 {
			s.fire(sg)
			return
		}
		// A link may have failed during the latency window; re-resolve
		// before the flow starts carrying bytes.
		if s.fail != nil {
			for _, l := range links {
				if !s.fail.down[l] {
					continue
				}
				fresh, err := s.route(src, dst)
				if err != nil {
					s.FlowsFailed++
					s.Tracer.record(FlowEvent{Kind: FlowFail, Time: s.now, Src: src, Dst: dst, Bytes: bytes})
					s.Metrics.flowEnded(s, nil, true)
					s.fire(sg)
					return
				}
				links = fresh
				break
			}
		}
		s.nextFlowID++
		f := &flow{id: s.nextFlowID, src: src, dst: dst, links: links, remaining: bytes, done: sg, started: s.now}
		s.flows[f.id] = f
		s.ratesDirty = true
		if s.Tracer != nil {
			s.Tracer.record(FlowEvent{Kind: FlowStart, Time: s.now, ID: f.id, Src: src, Dst: dst,
				Bytes: bytes, Route: append([]int32(nil), links...)})
		}
		s.Metrics.flowStarted(s)
	})
	return sg, nil
}

// --- Proc API ---

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.sim.now }

// Sim returns the simulator owning this process.
func (p *Proc) Sim() *Sim { return p.sim }

// yield parks the process until the scheduler resumes it.
func (p *Proc) yield() {
	p.sim.yielded <- struct{}{}
	<-p.resume
}

// Wait blocks until the signal fires (returns immediately if it already
// has).
func (p *Proc) Wait(sg *Signal) {
	if sg.fired {
		return
	}
	sg.waiters = append(sg.waiters, p)
	p.yield()
}

// WaitAll blocks until all the given signals have fired.
func (p *Proc) WaitAll(sgs ...*Signal) {
	for _, sg := range sgs {
		p.Wait(sg)
	}
}

// Sleep advances the process's virtual time by d seconds (modelling
// computation).
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic("simnet: negative sleep")
	}
	sg := p.sim.NewSignal()
	p.sim.FireAt(sg, d)
	p.Wait(sg)
}
