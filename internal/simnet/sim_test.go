package simnet

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/rng"
)

// testNetwork builds a small fixture: 3 switches in a path, 2 hosts each.
func testNetwork(t *testing.T, cfg Config) *Network {
	t.Helper()
	g, err := hsgraph.Path(6, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRouteStructure(t *testing.T) {
	nw := testNetwork(t, Config{})
	// Hosts 0,1 on switch 0; 2,3 on switch 1; 4,5 on switch 2.
	links, err := nw.Route(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 4 {
		t.Fatalf("route 0->5 has %d links, want 4", len(links))
	}
	// Consecutive links must chain: to of link i == from of link i+1.
	for i := 0; i+1 < len(links); i++ {
		if nw.linkTo[links[i]] != nw.linkFrom[links[i+1]] {
			t.Fatalf("route not contiguous at hop %d", i)
		}
	}
	if nw.linkFrom[links[0]] != 0 || nw.linkTo[links[len(links)-1]] != 5 {
		t.Fatal("route endpoints wrong")
	}
	if nw.Hops(0, 5) != 4 || nw.Hops(0, 1) != 2 || nw.Hops(3, 3) != 0 {
		t.Fatal("Hops wrong")
	}
	if _, err := nw.Route(0, 99); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if p, err := nw.Route(2, 2); err != nil || p != nil {
		t.Fatal("self route should be nil")
	}
}

func TestSingleFlowTiming(t *testing.T) {
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-6, MessageOverhead: 5e-6}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	var finish float64
	s.Spawn(0, func(p *Proc) {
		sg, err := s.StartFlow(0, 5, 1e6) // 1 MB over 4 hops
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
		finish = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := 5e-6 + 4*1e-6 + 1e6/1e9
	if math.Abs(finish-want) > 1e-12 {
		t.Fatalf("finish = %v, want %v", finish, want)
	}
	if s.FlowsCompleted != 1 {
		t.Fatalf("FlowsCompleted = %d", s.FlowsCompleted)
	}
}

func TestSelfAndZeroByteFlows(t *testing.T) {
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-6, MessageOverhead: 5e-6}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	var tSelf, tZero float64
	s.Spawn(0, func(p *Proc) {
		sg, err := s.StartFlow(0, 0, 123)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
		tSelf = p.Now()
		sg2, err := s.StartFlow(0, 5, 0)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg2)
		tZero = p.Now() - tSelf
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tSelf-5e-6) > 1e-12 {
		t.Fatalf("self flow time = %v, want overhead 5e-6", tSelf)
	}
	if math.Abs(tZero-(5e-6+4e-6)) > 1e-12 {
		t.Fatalf("zero-byte time = %v, want %v", tZero, 9e-6)
	}
}

func TestFairSharing(t *testing.T) {
	// Two hosts on switch 0 send to the two hosts on switch 2
	// simultaneously: both flows traverse the two inter-switch links and
	// must each get half the bandwidth.
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-9, MessageOverhead: 1e-9}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	finish := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(i, func(p *Proc) {
			sg, err := s.StartFlow(i, 4+i, 1e6)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(sg)
			finish[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2 * 1e6 / 1e9 // half bandwidth each
	for i, f := range finish {
		if math.Abs(f-want) > want*0.01 {
			t.Fatalf("flow %d finished at %v, want ~%v", i, f, want)
		}
	}
}

func TestDisjointFlowsFullRate(t *testing.T) {
	// Host 0 -> host 1 (same switch) and host 4 -> host 5 (same switch):
	// disjoint paths, both at full rate.
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-9, MessageOverhead: 1e-9}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	finish := make([]float64, 2)
	pairs := [][2]int{{0, 1}, {4, 5}}
	for i, pr := range pairs {
		i, pr := i, pr
		s.Spawn(pr[0], func(p *Proc) {
			sg, err := s.StartFlow(pr[0], pr[1], 1e6)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(sg)
			finish[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := 1e6 / 1e9
	for i, f := range finish {
		if math.Abs(f-want) > want*0.01 {
			t.Fatalf("flow %d finished at %v, want ~%v (full rate)", i, f, want)
		}
	}
}

func TestMaxMinAsymmetric(t *testing.T) {
	// Host 0 -> 2 (shares link sw0-sw1) and host 1 -> 4 (sw0-sw1 and
	// sw1-sw2). Both flows share the sw0->sw1 link: max-min gives each
	// 1/2. After the short flow ends the long one speeds up to full rate.
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-12, MessageOverhead: 1e-12}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	var tShort, tLong float64
	s.Spawn(0, func(p *Proc) {
		sg, err := s.StartFlow(0, 2, 1e6)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
		tShort = p.Now()
	})
	s.Spawn(1, func(p *Proc) {
		sg, err := s.StartFlow(1, 4, 2e6)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
		tLong = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Short: 1e6 at 0.5e9 -> 2 ms. Long: 1e6 at 0.5e9 (2ms) + 1e6 at 1e9
	// (1ms) -> 3 ms.
	if math.Abs(tShort-2e-3) > 2e-5 {
		t.Fatalf("short flow = %v, want ~2e-3", tShort)
	}
	if math.Abs(tLong-3e-3) > 3e-5 {
		t.Fatalf("long flow = %v, want ~3e-3", tLong)
	}
}

func TestSleepAndOrdering(t *testing.T) {
	nw := testNetwork(t, Config{})
	s := NewSim(nw)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(i, func(p *Proc) {
			p.Sleep(float64(3-i) * 1e-3)
			order = append(order, i)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("wake order = %v, want [2 1 0]", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	nw := testNetwork(t, Config{})
	s := NewSim(nw)
	s.Spawn(0, func(p *Proc) {
		p.Wait(s.NewSignal()) // never fires
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	nw := testNetwork(t, Config{})
	s := NewSim(nw)
	s.Spawn(0, func(p *Proc) {
		panic("boom")
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected panic error, got %v", err)
	}
}

func TestWaitAllAndFiredSignal(t *testing.T) {
	nw := testNetwork(t, Config{})
	s := NewSim(nw)
	var done bool
	s.Spawn(0, func(p *Proc) {
		a, b := s.NewSignal(), s.NewSignal()
		s.FireAt(a, 1e-3)
		s.FireAt(b, 2e-3)
		p.WaitAll(a, b)
		if !a.Fired() || !b.Fired() {
			t.Error("signals not fired")
		}
		p.Wait(a) // already fired: returns immediately
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("body did not complete")
	}
}

func TestDeterministicTimings(t *testing.T) {
	run := func() []float64 {
		g, err := hsgraph.RandomConnected(16, 6, 6, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		nw, err := NewNetwork(g, Config{})
		if err != nil {
			t.Fatal(err)
		}
		s := NewSim(nw)
		finish := make([]float64, 16)
		for i := 0; i < 16; i++ {
			i := i
			s.Spawn(i, func(p *Proc) {
				sg, err := s.StartFlow(i, (i+5)%16, float64(1000*(i+1)))
				if err != nil {
					t.Error(err)
					return
				}
				p.Wait(sg)
				finish[i] = p.Now()
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timing %d differs between runs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHashSpreadRoutesValid(t *testing.T) {
	g, err := hsgraph.RandomConnected(20, 8, 6, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []TieBreak{LowestIndex, HashSpread} {
		nw, err := NewNetwork(g, Config{TieBreak: tb})
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < 20; src++ {
			for dst := 0; dst < 20; dst++ {
				if src == dst {
					continue
				}
				links, err := nw.Route(src, dst)
				if err != nil {
					t.Fatalf("tiebreak %v: route(%d,%d): %v", tb, src, dst, err)
				}
				if len(links) != nw.Hops(src, dst) {
					t.Fatalf("tiebreak %v: route length %d != hops %d", tb, len(links), nw.Hops(src, dst))
				}
				for i := 0; i+1 < len(links); i++ {
					if nw.linkTo[links[i]] != nw.linkFrom[links[i+1]] {
						t.Fatal("discontiguous route")
					}
				}
			}
		}
	}
}

func TestRouteMatchesGraphDistance(t *testing.T) {
	g, err := hsgraph.RandomConnected(24, 8, 7, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 24; a++ {
		for b := 0; b < 24; b++ {
			if a == b {
				continue
			}
			if nw.Hops(a, b) != g.HostDistance(a, b) {
				t.Fatalf("Hops(%d,%d) = %d, graph says %d", a, b, nw.Hops(a, b), g.HostDistance(a, b))
			}
		}
	}
}

func TestNegativeFlowRejected(t *testing.T) {
	nw := testNetwork(t, Config{})
	s := NewSim(nw)
	if _, err := s.StartFlow(0, 1, -5); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestLinkStatsTracking(t *testing.T) {
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-9, MessageOverhead: 1e-9}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	s.TrackLinkStats = true
	s.Spawn(0, func(p *Proc) {
		sg, err := s.StartFlow(0, 5, 1e6)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	loads := s.LinkLoads()
	if len(loads) != nw.NumLinks() {
		t.Fatalf("got %d loads for %d links", len(loads), nw.NumLinks())
	}
	// Exactly the 4 route links carried 1e6 bytes; all others zero.
	carried := 0
	for _, l := range loads {
		switch {
		case l.Bytes > 0.999e6 && l.Bytes < 1.001e6:
			carried++
		case l.Bytes != 0:
			t.Fatalf("link %d->%d carried unexpected %v bytes", l.From, l.To, l.Bytes)
		}
	}
	if carried != 4 {
		t.Fatalf("%d links carried the flow, want 4", carried)
	}
	maxB, meanB := s.LinkLoadSummary()
	if maxB < 0.999e6 || meanB < 0.999e6 {
		t.Fatalf("summary wrong: max %v mean %v", maxB, meanB)
	}
}

func TestLinkStatsDisabledByDefault(t *testing.T) {
	nw := testNetwork(t, Config{})
	s := NewSim(nw)
	s.Spawn(0, func(p *Proc) {
		sg, _ := s.StartFlow(0, 5, 1000)
		p.Wait(sg)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	maxB, meanB := s.LinkLoadSummary()
	if maxB != 0 || meanB != 0 {
		t.Fatal("stats collected without opt-in")
	}
	for _, l := range s.LinkLoads() {
		if l.Bytes != 0 {
			t.Fatal("nonzero load reported without tracking")
		}
	}
}
