package simnet

import (
	"math"
	"testing"
)

func TestPacketSingleMessageTiming(t *testing.T) {
	// One 4-hop message of exactly 2 packets: store-and-forward time is
	// overhead + first packet pipeline (hops*(tx+lat)) + one extra tx
	// for the trailing packet on the last link... with equal-size packets
	// the last packet arrives one tx after the first on every link, so
	// total = overhead + hops*(tx+lat) + tx.
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-6, MessageOverhead: 5e-6}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	var finish float64
	s.Spawn(0, func(p *Proc) {
		sg, err := s.StartPacketMessage(0, 5, 8192, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
		finish = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tx := 4096.0 / 1e9
	want := 5e-6 + 4*(tx+1e-6) + tx
	if math.Abs(finish-want) > 1e-12 {
		t.Fatalf("finish = %v, want %v", finish, want)
	}
}

func TestPacketSelfAndZero(t *testing.T) {
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-6, MessageOverhead: 5e-6}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	var tSelf, tZero float64
	s.Spawn(0, func(p *Proc) {
		sg, err := s.StartPacketMessage(0, 0, 999, 0)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg)
		tSelf = p.Now()
		sg2, err := s.StartPacketMessage(0, 5, 0, 0)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(sg2)
		tZero = p.Now() - tSelf
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tSelf-5e-6) > 1e-12 {
		t.Fatalf("self = %v", tSelf)
	}
	if math.Abs(tZero-(5e-6+4e-6)) > 1e-12 {
		t.Fatalf("zero-byte = %v", tZero)
	}
}

func TestPacketSerialisationUnderContention(t *testing.T) {
	// Two simultaneous messages share the sw0->sw1->sw2 path: the second
	// message's packets queue behind the first's, roughly doubling the
	// completion time of the later one.
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-9, MessageOverhead: 1e-9}
	nw := testNetwork(t, cfg)
	s := NewSim(nw)
	finish := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Spawn(i, func(p *Proc) {
			sg, err := s.StartPacketMessage(i, 4+i, 1e6, 4096)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(sg)
			finish[i] = p.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	serial := 1e6 / 1e9
	later := math.Max(finish[0], finish[1])
	if later < 1.8*serial || later > 2.4*serial {
		t.Fatalf("contended completion %v, want ~%v (2x serial)", later, 2*serial)
	}
}

func TestPacketVsFluidAgreeOnIsolatedTransfer(t *testing.T) {
	// With no contention the two models should agree within the
	// pipelining slack (hops * packet tx).
	cfg := Config{BandwidthBps: 1e9, LatencyPerHop: 1e-7, MessageOverhead: 1e-7}
	nw := testNetwork(t, cfg)
	timeOf := func(packet bool) float64 {
		s := NewSim(nw)
		var finish float64
		s.Spawn(0, func(p *Proc) {
			var sg *Signal
			var err error
			if packet {
				sg, err = s.StartPacketMessage(0, 5, 1e6, 4096)
			} else {
				sg, err = s.StartFlow(0, 5, 1e6)
			}
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(sg)
			finish = p.Now()
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	fluid, packet := timeOf(false), timeOf(true)
	if packet < fluid {
		t.Fatalf("packet model faster than fluid: %v < %v", packet, fluid)
	}
	if packet > fluid*1.1 {
		t.Fatalf("models diverge too much on an isolated transfer: %v vs %v", packet, fluid)
	}
}

func TestPacketDeterministic(t *testing.T) {
	cfg := Config{}
	nw := testNetwork(t, cfg)
	run := func() float64 {
		s := NewSim(nw)
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn(i, func(p *Proc) {
				sg, err := s.StartPacketMessage(i, 5-i, float64(10000*(i+1)), 0)
				if err != nil {
					t.Error(err)
					return
				}
				p.Wait(sg)
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("packet runs differ: %v vs %v", a, b)
	}
}

func TestPacketNegativeRejected(t *testing.T) {
	nw := testNetwork(t, Config{})
	s := NewSim(nw)
	if _, err := s.StartPacketMessage(0, 1, -1, 0); err == nil {
		t.Fatal("negative size accepted")
	}
}
