package simnet

import "fmt"

// Packet-level transfers: an alternative to the fluid flow model in which
// a message is segmented into MTU-sized packets that traverse the route
// store-and-forward, one packet at a time per directed link (FIFO).
// Slower to simulate but it captures serialisation and head-of-line
// effects the fluid model averages away; the test suite cross-validates
// the two models against each other.

// DefaultMTU is the packet size used when StartPacketMessage gets mtu=0.
const DefaultMTU = 4096

// StartPacketMessage transfers bytes from src to dst packet by packet and
// returns a signal that fires when the last packet arrives. Packets pay
// the per-message overhead once, then per hop: queueing behind earlier
// packets on the link, transmission bytes/bandwidth, and the hop latency.
func (s *Sim) StartPacketMessage(src, dst int, bytes, mtu float64) (*Signal, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("simnet: negative transfer size %v", bytes)
	}
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	sg := s.NewSignal()
	cfg := s.net.cfg
	if src == dst || bytes == 0 {
		delay := cfg.MessageOverhead
		if src != dst {
			links, err := s.route(src, dst)
			if err != nil {
				return nil, err
			}
			delay += float64(len(links)) * cfg.LatencyPerHop
		}
		s.FireAt(sg, delay)
		return sg, nil
	}
	links, err := s.route(src, dst)
	if err != nil {
		return nil, err
	}
	if s.linkFreeAt == nil {
		s.linkFreeAt = make([]float64, s.net.NumLinks())
	}
	packets := int((bytes + mtu - 1) / mtu)
	remaining := packets
	// Launch every packet at the source after the message overhead; each
	// packet then walks the route hop by hop via chained events.
	for i := 0; i < packets; i++ {
		size := mtu
		if i == packets-1 {
			size = bytes - mtu*float64(packets-1)
		}
		s.after(cfg.MessageOverhead, s.packetHop(links, 0, size, func() {
			remaining--
			if remaining == 0 {
				s.fire(sg)
			}
		}))
	}
	return sg, nil
}

// packetHop returns an event body that sends the packet across
// links[hop] and chains to the next hop (or delivers).
func (s *Sim) packetHop(links []int32, hop int, size float64, deliver func()) func() {
	return func() {
		if hop == len(links) {
			deliver()
			return
		}
		l := links[hop]
		cfg := s.net.cfg
		depart := s.now
		if s.linkFreeAt[l] > depart {
			depart = s.linkFreeAt[l]
		}
		tx := size / cfg.BandwidthBps
		s.linkFreeAt[l] = depart + tx
		arrive := depart + tx + cfg.LatencyPerHop
		s.after(arrive-s.now, s.packetHop(links, hop+1, size, deliver))
	}
}
