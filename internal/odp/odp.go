// Package odp solves the order/degree problem (ODP) discussed in the
// paper's introduction and studied by the Graph Golf competition [4]:
// given the order N and the maximum degree D of an ordinary undirected
// graph, find one minimising the (switch-to-switch) average shortest path
// length and diameter.
//
// ODP is the special case of ORP obtained by attaching exactly one host
// to every switch: the host-to-host metrics then differ from the
// switch-graph metrics only by the affine map of Equation 1, so the same
// annealer applies with the swap operation, which preserves the regular
// structure. The package also reads and writes the Graph Golf edge-list
// format (one "u v" pair per line).
package odp

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strings"

	"repro/internal/bounds"
	"repro/internal/hsgraph"
	"repro/internal/opt"
	"repro/internal/rng"
	"repro/internal/topo"
)

// Options configures Solve.
type Options struct {
	// Iterations for the annealer. Default 20000.
	Iterations int
	// Seed drives all randomness.
	Seed uint64
	// Schedule forwards to the annealer (Geometric by default).
	Schedule opt.Schedule
	// Workers is the number of evaluation shard workers (hsgraph.Evaluator);
	// zero means GOMAXPROCS. Results are identical for any worker count.
	Workers int
	// Eval selects the annealer's evaluation ladder rung (see
	// opt.EvalMode). Default exact.
	Eval opt.EvalMode
	// Symmetry, when >= 2, searches only graphs closed under a cyclic
	// group action of that order (must divide n): the start is a
	// symmetric regular graph (topo.RandomRegularSymmetric) and every
	// move swaps a whole edge orbit. Pair with Eval = opt.EvalSymmetric
	// to also quotient the evaluation.
	Symmetry int
}

// Result is a solved ODP instance.
type Result struct {
	Order    int
	Degree   int
	ASPL     float64 // switch-graph average shortest path length
	Diameter int     // switch-graph diameter
	ASPLGap  float64 // ASPL minus the Moore lower bound
	LowerB   float64 // Moore ASPL lower bound
	Graph    *hsgraph.Graph
}

// Solve searches for an order-n degree-d graph with minimal ASPL.
// Requires n >= 2, 2 <= d < n and n*d even.
func Solve(n, d int, o Options) (*Result, error) {
	if n < 2 {
		return nil, fmt.Errorf("odp: order %d < 2", n)
	}
	if d < 2 || d >= n {
		return nil, fmt.Errorf("odp: degree %d out of range [2, %d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("odp: n*d must be even (n=%d, d=%d)", n, d)
	}
	if o.Iterations == 0 {
		o.Iterations = 20000
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	// One host per vertex; radix d+1 leaves exactly d switch ports.
	var start *hsgraph.Graph
	var err error
	if o.Symmetry > 1 {
		start, err = topo.RandomRegularSymmetric(n, n, d+1, d, o.Symmetry, o.Seed)
	} else {
		start, err = hsgraph.RandomRegular(n, n, d+1, d, rng.New(o.Seed))
	}
	if err != nil {
		return nil, err
	}
	g, _, err := opt.Anneal(start, opt.Options{
		Iterations: o.Iterations,
		Moves:      opt.SwapOnly,
		Schedule:   o.Schedule,
		Seed:       o.Seed + 1,
		Workers:    o.Workers,
		Eval:       o.Eval,
		Symmetry:   o.Symmetry,
	})
	if err != nil {
		return nil, err
	}
	return resultFor(g)
}

func resultFor(g *hsgraph.Graph) (*Result, error) {
	aspl, diam, ok := g.SwitchASPL()
	if !ok {
		return nil, fmt.Errorf("odp: solution disconnected")
	}
	n := g.Switches()
	d := g.SwitchDegree(0)
	lb := bounds.ASPLLowerBoundRegular(n, d)
	return &Result{
		Order:    n,
		Degree:   d,
		ASPL:     aspl,
		Diameter: diam,
		ASPLGap:  aspl - lb,
		LowerB:   lb,
		Graph:    g,
	}, nil
}

// WriteEdgeList writes the switch graph in Graph Golf format: one
// "u v" pair per line, each undirected edge once, sorted.
func WriteEdgeList(w io.Writer, g *hsgraph.Graph) error {
	bw := bufio.NewWriter(w)
	type edge struct{ a, b int }
	edges := make([]edge, 0, g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i)
		if a > b {
			a, b = b, a
		}
		edges = append(edges, edge{a, b})
	}
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && less(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	for _, e := range edges {
		fmt.Fprintf(bw, "%d %d\n", e.a, e.b)
	}
	return bw.Flush()
}

func less(a, b struct{ a, b int }) bool {
	if a.a != b.a {
		return a.a < b.a
	}
	return a.b < b.b
}

// ReadEdgeList parses a Graph Golf edge list into a host-switch graph
// with one host per vertex. maxDegree bounds the switch ports; pass 0 to
// size it from the data.
func ReadEdgeList(r io.Reader, maxDegree int) (*hsgraph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	type edge struct{ a, b int }
	var edges []edge
	maxV := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("odp: line %d: %v", lineNo, err)
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("odp: line %d: negative vertex", lineNo)
		}
		if a > hsgraph.MaxReadDim || b > hsgraph.MaxReadDim {
			return nil, fmt.Errorf("odp: line %d: vertex id exceeds limit %d", lineNo, hsgraph.MaxReadDim)
		}
		if a > maxV {
			maxV = a
		}
		if b > maxV {
			maxV = b
		}
		edges = append(edges, edge{a, b})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxV < 1 {
		return nil, fmt.Errorf("odp: empty edge list")
	}
	n := maxV + 1
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.a]++
		deg[e.b]++
	}
	if maxDegree == 0 {
		for _, d := range deg {
			if d > maxDegree {
				maxDegree = d
			}
		}
	}
	g := hsgraph.New(n, n, maxDegree+1)
	for v := 0; v < n; v++ {
		if err := g.AttachHost(v, v); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if err := g.Connect(e.a, e.b); err != nil {
			return nil, fmt.Errorf("odp: edge (%d,%d): %w", e.a, e.b, err)
		}
	}
	return g, nil
}

// Evaluate reports the ODP metrics of an edge-list graph.
func Evaluate(g *hsgraph.Graph) (*Result, error) {
	aspl, diam, ok := g.SwitchASPL()
	if !ok {
		return nil, fmt.Errorf("odp: graph disconnected")
	}
	n := g.Switches()
	// Use the maximum degree for the bound (graphs need not be regular).
	d := 0
	for s := 0; s < n; s++ {
		if g.SwitchDegree(s) > d {
			d = g.SwitchDegree(s)
		}
	}
	lb := bounds.ASPLLowerBoundRegular(n, d)
	return &Result{Order: n, Degree: d, ASPL: aspl, Diameter: diam, ASPLGap: aspl - lb, LowerB: lb, Graph: g}, nil
}
