package odp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/hsgraph"
	"repro/internal/opt"
)

func TestSolveSmall(t *testing.T) {
	res, err := Solve(16, 3, Options{Iterations: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Order != 16 || res.Degree != 3 {
		t.Fatalf("result header wrong: %+v", res)
	}
	if res.ASPL < res.LowerB-1e-9 {
		t.Fatalf("ASPL %v beats Moore bound %v", res.ASPL, res.LowerB)
	}
	if res.ASPLGap > 0.35 {
		t.Fatalf("SA ended far from the bound: gap %v", res.ASPLGap)
	}
	for s := 0; s < 16; s++ {
		if res.Graph.SwitchDegree(s) != 3 {
			t.Fatalf("solution not 3-regular at %d", s)
		}
	}
}

func TestSolvePetersenBoundReachable(t *testing.T) {
	// (n, d) = (10, 3): the Petersen graph attains ASPL 5/3 and diameter
	// 2; SA should find an optimal graph on this tiny instance.
	res, err := Solve(10, 3, Options{Iterations: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ASPL-5.0/3) > 1e-9 {
		t.Fatalf("did not reach the Petersen bound: ASPL %v, want %v", res.ASPL, 5.0/3)
	}
	if res.Diameter != 2 {
		t.Fatalf("diameter %d, want 2", res.Diameter)
	}
}

func TestSolveValidation(t *testing.T) {
	cases := []struct{ n, d int }{{1, 2}, {10, 1}, {10, 10}, {9, 3}}
	for _, c := range cases {
		if _, err := Solve(c.n, c.d, Options{Iterations: 10}); err == nil {
			t.Errorf("Solve(%d,%d) accepted", c.n, c.d)
		}
	}
}

func TestSolveHillClimbSchedule(t *testing.T) {
	res, err := Solve(16, 4, Options{Iterations: 3000, Seed: 5, Schedule: opt.HillClimb})
	if err != nil {
		t.Fatal(err)
	}
	if res.ASPL < res.LowerB-1e-9 {
		t.Fatal("hill climb beat the bound")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	res, err := Solve(12, 4, Options{Iterations: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, res.Graph); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != res.Graph.NumEdges() {
		t.Fatalf("wrote %d lines for %d edges", lines, res.Graph.NumEdges())
	}
	g, err := ReadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.ASPL-res.ASPL) > 1e-12 || back.Diameter != res.Diameter {
		t.Fatalf("round trip changed metrics: %+v vs %+v", back, res)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"garbage":   "a b\n",
		"negative":  "-1 2\n",
		"self loop": "3 3\n",
		"duplicate": "0 1\n1 0\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# petersen-ish fragment\n0 1\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Order != 3 || res.ASPL != 1 || res.Diameter != 1 {
		t.Fatalf("triangle metrics wrong: %+v", res)
	}
}

func TestEvaluateDisconnected(t *testing.T) {
	in := "0 1\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(g); err == nil {
		t.Fatal("disconnected graph evaluated")
	}
}

func TestSolveDeterministic(t *testing.T) {
	a, err := Solve(14, 3, Options{Iterations: 1000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(14, 3, Options{Iterations: 1000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.ASPL != b.ASPL || a.Diameter != b.Diameter {
		t.Fatal("ODP solve not deterministic")
	}
}

// FuzzGolfEdgeList fuzzes the raw Graph Golf "u v" edge-list parser: no
// panics or hostile allocations, and every accepted graph must be
// structurally valid (one host per vertex by construction) up to
// connectivity, evaluate cleanly, and round-trip through WriteEdgeList.
func FuzzGolfEdgeList(f *testing.F) {
	seeds := []string{
		"0 1\n1 2\n2 0\n",
		"# ring\n0 1\n\n1 2\n2 3\n3 0\n",
		"0 1\n",
		"0 1\n5 6\n", // disconnected, gap in ids
		"1000000000 0\n",
		"0 -1\n",
		"x y\n",
		"0 0\n",
		"0 1\n0 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), 0)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil && verr != hsgraph.ErrNotConnected {
			t.Fatalf("ReadEdgeList accepted a structurally invalid graph: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("WriteEdgeList failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf, 0)
		if err != nil {
			t.Fatalf("reparse of canonical edge list failed: %v", err)
		}
		if !hsgraph.Equal(g, g2) {
			t.Fatal("edge-list round trip changed the graph")
		}
	})
}
